//===- pdag/PredCompile.cpp - Predicate bytecode compiler -----------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "pdag/PredCompile.h"

#include "support/Error.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace halo;
using namespace halo::pdag;

namespace {

// Tri-state encoding on the predicate stack.
constexpr uint8_t TriFalse = 0;
constexpr uint8_t TriTrue = 1;
constexpr uint8_t TriUnknown = 2;

// Same semantics as the Divides case of tryEvalPred.
bool dividesHolds(int64_t DV, int64_t VV, bool Neg) {
  int64_t Div = DV < 0 ? -DV : DV;
  bool Holds = Div == 0 ? (VV == 0) : (VV % Div == 0);
  return Holds != Neg;
}

} // namespace

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

namespace halo {
namespace pdag {

class PredCompiler {
public:
  PredCompiler(const sym::Context &Ctx, CompiledPred &Out)
      : Ctx(Ctx), Out(Out),
        XB(Ctx, Out.XCode, Out.ScalarSlots, Out.ArraySlots) {}

  void compileRoot(const Pred *P) {
    countRefs(P);
    compilePred(P, /*AtRoot=*/true);
    Out.MainCodeEnd = here();
    emitSubroutines();
    finalize(P);
  }

  /// True when the expression layer tripped a lowering resource guard
  /// while emitting this object (CompiledPred::compile then discards it).
  bool exceeded() const { return XB.exceeded(); }

private:
  uint32_t scalarSlot(sym::SymbolId S) { return XB.scalarSlot(S); }

  /// Emits \p E as a fresh expression code range (shared expression
  /// bytecode layer, pdag/ExprCode.h).
  std::pair<uint32_t, uint32_t> compileExpr(const sym::Expr *E) {
    return XB.compile(E);
  }

  uint32_t emitP(PredInstr::Op Op, uint32_t A = 0, uint32_t B = 0,
                 uint32_t C = 0, uint32_t D = 0, uint8_t Aux = 0) {
    Out.PCode.push_back(PredInstr{Op, A, B, C, D, Aux});
    return static_cast<uint32_t>(Out.PCode.size() - 1);
  }

  uint32_t here() const { return static_cast<uint32_t>(Out.PCode.size()); }

  /// DAG analysis: per-node reference counts (deciding which shared
  /// compound nodes become subroutines) and the set of every LoopAll
  /// bound variable (the conservative invariance context for code shared
  /// across call sites).
  void countRefs(const Pred *P) {
    if (++RefCount[P] > 1)
      return; // Children already counted on the first visit.
    switch (P->getKind()) {
    case PredKind::And:
    case PredKind::Or:
      for (const Pred *C : cast<NaryPred>(P)->getChildren())
        countRefs(C);
      return;
    case PredKind::LoopAll: {
      const auto *L = cast<LoopAllPred>(P);
      AllLoopVars.push_back(L->getVar());
      countRefs(L->getBody());
      return;
    }
    case PredKind::CallSite:
      countRefs(cast<CallSitePred>(P)->getBody());
      return;
    default:
      return;
    }
  }

  /// A multiply-referenced compound node compiles once as a subroutine;
  /// expanding the interned DAG into a tree can blow code size up by
  /// orders of magnitude (the UMEG-factorized predicates share heavily).
  bool isSharedSub(const Pred *P) const {
    switch (P->getKind()) {
    case PredKind::And:
    case PredKind::Or:
    case PredKind::LoopAll:
    case PredKind::CallSite: {
      auto It = RefCount.find(P);
      return It != RefCount.end() && It->second > 1;
    }
    default:
      return false; // Leaves are at most a couple of instructions.
    }
  }

  /// True when \p P reads none of the loop variables it could be
  /// iterated under. Inside a subroutine body the code is shared across
  /// call sites with different loop contexts, so the check is against
  /// every LoopAll variable of the whole predicate.
  bool isInvariantHere(const Pred *P) const {
    const std::vector<sym::SymbolId> &Vars =
        InSubBody ? AllLoopVars : EnclosingVars;
    for (sym::SymbolId V : Vars)
      if (P->dependsOn(V))
        return false;
    return true;
  }

  /// Emits a reference to \p P: shared compound nodes become a CallSub to
  /// their (single) subroutine body, everything else compiles inline.
  void emitNodeRef(const Pred *P, bool AtRoot) {
    if (!AtRoot && isSharedSub(P)) {
      if (Scheduled.insert(P).second)
        PendingSubs.push_back(P);
      CallSites.emplace_back(emitP(PredInstr::Op::CallSub), P);
      return;
    }
    compilePred(P, AtRoot);
  }

  /// Compiles \p P, memoizing it when it is loop-invariant at this site:
  /// the first evaluation stores the tri-state in a per-evaluation memo
  /// slot, later iterations jump straight past the sub-predicate's code.
  void compileChild(const Pred *P) {
    const bool InLoop = InSubBody ? !AllLoopVars.empty()
                                  : !EnclosingVars.empty();
    bool Memoize = InLoop && !P->isTrue() && !P->isFalse() &&
                   isInvariantHere(P);
    if (!Memoize) {
      emitNodeRef(P, /*AtRoot=*/false);
      return;
    }
    uint32_t Slot;
    auto It = MemoSlotFor.find(P);
    if (It != MemoSlotFor.end()) {
      Slot = It->second;
    } else {
      Slot = Out.NumMemoSlots++;
      MemoSlotFor.emplace(P, Slot);
    }
    uint32_t Check = emitP(PredInstr::Op::MemoCheck, Slot);
    emitNodeRef(P, /*AtRoot=*/false);
    emitP(PredInstr::Op::MemoStore, Slot);
    Out.PCode[Check].B = here();
  }

  void emitSubroutines() {
    if (PendingSubs.empty())
      return;
    // Padding so no subroutine entry aliases MainCodeEnd (the run loop's
    // end-of-code sentinel); never executed.
    emitP(PredInstr::Op::Ret);
    InSubBody = true;
    EnclosingVars.clear();
    while (!PendingSubs.empty()) {
      const Pred *P = PendingSubs.front();
      PendingSubs.pop_front();
      uint32_t Entry = here();
      SubEntry[P] = Entry;
      compilePred(P, /*AtRoot=*/false);
      emitP(PredInstr::Op::Ret);
      SubRange[Entry] = here();
    }
    InSubBody = false;
    for (const auto &[Ip, P] : CallSites)
      Out.PCode[Ip].A = SubEntry.at(P);
    Out.NumSubs = static_cast<uint32_t>(SubEntry.size());
  }

  /// Exact peak tri-state stack depth of evaluating \p P (which leaves
  /// one value): And/Or hold their accumulator while a child evaluates,
  /// loop/call state lives on separate stacks. Matches the emitted
  /// bytecode instruction for instruction, so frames can be sized from it
  /// instead of code length.
  uint32_t predDepth(const Pred *P) {
    auto It = DepthMemo.find(P);
    if (It != DepthMemo.end())
      return It->second;
    uint32_t D = 1;
    switch (P->getKind()) {
    case PredKind::And:
    case PredKind::Or: {
      uint32_t M = 0;
      for (const Pred *C : cast<NaryPred>(P)->getChildren())
        M = std::max(M, predDepth(C));
      D = 1 + M;
      break;
    }
    case PredKind::LoopAll:
      D = std::max(1u, predDepth(cast<LoopAllPred>(P)->getBody()));
      break;
    case PredKind::CallSite:
      D = predDepth(cast<CallSitePred>(P)->getBody());
      break;
    default:
      break; // Leaves push exactly one value.
    }
    DepthMemo.emplace(P, D);
    return D;
  }

  /// Exact LoopAll nesting depth (LoopStack bound).
  uint32_t loopNest(const Pred *P) {
    auto It = NestMemo.find(P);
    if (It != NestMemo.end())
      return It->second;
    uint32_t D = 0;
    switch (P->getKind()) {
    case PredKind::And:
    case PredKind::Or:
      for (const Pred *C : cast<NaryPred>(P)->getChildren())
        D = std::max(D, loopNest(C));
      break;
    case PredKind::LoopAll:
      D = 1 + loopNest(cast<LoopAllPred>(P)->getBody());
      break;
    case PredKind::CallSite:
      D = loopNest(cast<CallSitePred>(P)->getBody());
      break;
    default:
      break;
    }
    NestMemo.emplace(P, D);
    return D;
  }

  /// True when code range [Begin, End) can run the block walker: no loop
  /// opcodes, transitively through CallSub targets. MemoCheck regions are
  /// skipped — the walker never executes them per lane (a memo miss runs
  /// the region scalar, which handles any opcode), so a loop-invariant
  /// sub-loop does not break blockability.
  bool rangeBlockable(uint32_t Begin, uint32_t End) {
    for (uint32_t Ip = Begin; Ip < End; ++Ip) {
      const PredInstr &I = Out.PCode[Ip];
      switch (I.Opcode) {
      case PredInstr::Op::LoopBegin:
      case PredInstr::Op::LoopStep:
        return false;
      case PredInstr::Op::MemoCheck:
        Ip = I.B - 1; // Skip the memoized region (jumped over per lane).
        break;
      case PredInstr::Op::CallSub: {
        auto Memo = SubBlockable.find(I.A);
        bool Ok;
        if (Memo != SubBlockable.end()) {
          Ok = Memo->second;
        } else {
          // Seed optimistically: the DAG is acyclic, so recursion through
          // the same entry cannot occur; the seed only guards reentry.
          SubBlockable[I.A] = true;
          Ok = rangeBlockable(I.A, SubRange.at(I.A));
          SubBlockable[I.A] = Ok;
        }
        if (!Ok)
          return false;
        break;
      }
      default:
        break;
      }
    }
    return true;
  }

  /// True when expression range [Begin, End) loads an array through the
  /// loop variable (the shape the block tier's fused gathers accelerate):
  /// a var-indexed fused load, or a general ArrayLoad downstream of a
  /// var-slot read (conservative — the var feeds *some* index upstream).
  bool exprRangeHasVarLoad(uint32_t Begin, uint32_t End,
                           uint32_t VarSlot) const {
    bool SawVar = false;
    for (uint32_t Ip = Begin; Ip < End; ++Ip) {
      const ExprInstr &I = Out.XCode[Ip];
      if (I.Opcode == ExprInstr::Op::Scalar && I.Slot == VarSlot)
        SawVar = true;
      else if (I.Opcode == ExprInstr::Op::ArrayLoadOff &&
               I.loadOffIdxSlot() == VarSlot)
        return true;
      else if (I.Opcode == ExprInstr::Op::ArrayLoad && SawVar)
        return true;
    }
    return false;
  }

  /// Whether predicate range [Begin, End) (transitively through CallSub)
  /// contains a leaf whose expression loads arrays through \p VarSlot.
  bool rangeHasVarLoad(uint32_t Begin, uint32_t End, uint32_t VarSlot) const {
    for (uint32_t Ip = Begin; Ip < End; ++Ip) {
      const PredInstr &I = Out.PCode[Ip];
      switch (I.Opcode) {
      case PredInstr::Op::LeafCmp:
        if (exprRangeHasVarLoad(I.A, I.B, VarSlot))
          return true;
        break;
      case PredInstr::Op::LeafDivides:
        if (exprRangeHasVarLoad(I.A, I.B, VarSlot) ||
            exprRangeHasVarLoad(I.C, I.D, VarSlot))
          return true;
        break;
      case PredInstr::Op::MemoCheck:
        Ip = I.B - 1; // Memoized regions are loop-invariant by definition.
        break;
      case PredInstr::Op::CallSub:
        if (rangeHasVarLoad(I.A, SubRange.at(I.A), VarSlot))
          return true;
        break;
      default:
        break;
      }
    }
    return false;
  }

  /// Post-pass: exact stack depths (frames are sized from these) and the
  /// block-tier compatibility flags.
  void finalize(const Pred *Root) {
    Out.XMaxDepth = XB.maxStackDepth();
    Out.PMaxDepth = predDepth(Root);
    Out.MaxLoopNest = loopNest(Root);
    Out.MainBlockOk = rangeBlockable(0, Out.MainCodeEnd);
    if (Out.RootLoop >= 0) {
      const CompiledLoop &L = Out.Loops[static_cast<size_t>(Out.RootLoop)];
      Out.BlockOk = rangeBlockable(L.BodyBegin, L.StepIp);
      Out.BodyHasVarLoad = rangeHasVarLoad(L.BodyBegin, L.StepIp, L.VarSlot);
    }
#ifndef NDEBUG
    // Validate the exact expression-depth bound against a static
    // simulation of every referenced range (the satellite contract).
    const ExprInstr *XC = Out.XCode.data();
    for (const PredInstr &I : Out.PCode) {
      if (I.Opcode == PredInstr::Op::LeafCmp)
        assert(exprCodeMaxDepth(XC, I.A, I.B) <= Out.XMaxDepth);
      else if (I.Opcode == PredInstr::Op::LeafDivides) {
        assert(exprCodeMaxDepth(XC, I.A, I.B) <= Out.XMaxDepth);
        assert(exprCodeMaxDepth(XC, I.C, I.D) <= Out.XMaxDepth);
      }
    }
    for (const CompiledLoop &L : Out.Loops) {
      assert(exprCodeMaxDepth(XC, L.LoExprBegin, L.LoExprEnd) <=
             Out.XMaxDepth);
      assert(exprCodeMaxDepth(XC, L.HiExprBegin, L.HiExprEnd) <=
             Out.XMaxDepth);
    }
#endif
  }

  void compilePred(const Pred *P, bool AtRoot) {
    switch (P->getKind()) {
    case PredKind::True:
      emitP(PredInstr::Op::PushBool, 0, 0, 0, 0, TriTrue);
      return;
    case PredKind::False:
      emitP(PredInstr::Op::PushBool, 0, 0, 0, 0, TriFalse);
      return;
    case PredKind::Cmp: {
      const auto *C = cast<CmpPred>(P);
      if (auto V = Ctx.constValue(C->getExpr())) {
        bool R = false;
        switch (C->getRel()) {
        case CmpRel::GE0:
          R = *V >= 0;
          break;
        case CmpRel::EQ0:
          R = *V == 0;
          break;
        case CmpRel::NE0:
          R = *V != 0;
          break;
        }
        emitP(PredInstr::Op::PushBool, 0, 0, 0, 0, R ? TriTrue : TriFalse);
        return;
      }
      auto [B, E] = compileExpr(C->getExpr());
      emitP(PredInstr::Op::LeafCmp, B, E, 0, 0,
            static_cast<uint8_t>(C->getRel()));
      return;
    }
    case PredKind::Divides: {
      const auto *D = cast<DividesPred>(P);
      auto DV = Ctx.constValue(D->getDivisor());
      auto VV = Ctx.constValue(D->getValue());
      if (DV && VV) {
        emitP(PredInstr::Op::PushBool, 0, 0, 0, 0,
              dividesHolds(*DV, *VV, D->isNegated()) ? TriTrue : TriFalse);
        return;
      }
      auto [DB, DE] = compileExpr(D->getDivisor());
      auto [VB, VE] = compileExpr(D->getValue());
      emitP(PredInstr::Op::LeafDivides, DB, DE, VB, VE,
            D->isNegated() ? 1 : 0);
      return;
    }
    case PredKind::And:
    case PredKind::Or: {
      const auto *N = cast<NaryPred>(P);
      const bool IsAnd = N->isAnd();
      emitP(PredInstr::Op::PushBool, 0, 0, 0, 0, IsAnd ? TriTrue : TriFalse);
      std::vector<uint32_t> Steps;
      for (const Pred *C : N->getChildren()) {
        compileChild(C);
        Steps.push_back(
            emitP(IsAnd ? PredInstr::Op::AndStep : PredInstr::Op::OrStep));
      }
      for (uint32_t S : Steps)
        Out.PCode[S].A = here();
      return;
    }
    case PredKind::LoopAll: {
      const auto *L = cast<LoopAllPred>(P);
      uint32_t DescIdx = static_cast<uint32_t>(Out.Loops.size());
      Out.Loops.emplace_back();
      {
        CompiledLoop &D = Out.Loops[DescIdx];
        std::tie(D.LoExprBegin, D.LoExprEnd) = compileExpr(L->getLo());
        std::tie(D.HiExprBegin, D.HiExprEnd) = compileExpr(L->getHi());
        D.VarSlot = scalarSlot(L->getVar());
      }
      if (AtRoot)
        Out.RootLoop = static_cast<int32_t>(DescIdx);
      emitP(PredInstr::Op::LoopBegin, DescIdx);
      Out.Loops[DescIdx].BodyBegin = here();
      EnclosingVars.push_back(L->getVar());
      compileChild(L->getBody());
      EnclosingVars.pop_back();
      Out.Loops[DescIdx].StepIp = emitP(PredInstr::Op::LoopStep, DescIdx);
      Out.Loops[DescIdx].EndIp = here();
      return;
    }
    case PredKind::CallSite:
      // Opaque barrier for static reasoning only; evaluation passes
      // through to the body (same as the interpreter).
      emitNodeRef(cast<CallSitePred>(P)->getBody(), AtRoot);
      return;
    }
    halo_unreachable("covered switch");
  }

  const sym::Context &Ctx;
  CompiledPred &Out;
  ExprCodeBuilder XB;
  std::vector<sym::SymbolId> EnclosingVars;
  std::vector<sym::SymbolId> AllLoopVars;
  bool InSubBody = false;
  std::unordered_map<const Pred *, uint32_t> MemoSlotFor;
  std::unordered_map<const Pred *, uint32_t> RefCount;
  std::unordered_set<const Pred *> Scheduled;
  std::deque<const Pred *> PendingSubs;
  std::vector<std::pair<uint32_t, const Pred *>> CallSites;
  std::unordered_map<const Pred *, uint32_t> SubEntry;
  /// Subroutine entry ip -> end ip (one past its Ret); finalize() walks
  /// these for the block-compatibility scans.
  std::unordered_map<uint32_t, uint32_t> SubRange;
  std::unordered_map<uint32_t, bool> SubBlockable;
  std::unordered_map<const Pred *, uint32_t> DepthMemo;
  std::unordered_map<const Pred *, uint32_t> NestMemo;
};

} // namespace pdag
} // namespace halo

namespace {

/// Iterative (explicit-stack) pre-check that the predicate DAG and every
/// leaf expression fit the lowering caps. Runs *before* the recursive
/// PredCompiler so a hostile deeply-nested predicate cannot overflow the
/// C++ stack during compilation; a failed check demotes the predicate to
/// the reference interpreter instead (CompiledPred::compile returns null).
bool predLoweringFits(const Pred *Root, unsigned Cap) {
  auto ForEachChild = [](const Pred *N, auto F) {
    switch (N->getKind()) {
    case PredKind::True:
    case PredKind::False:
    case PredKind::Cmp:
    case PredKind::Divides:
      break;
    case PredKind::And:
    case PredKind::Or:
      for (const Pred *C : cast<NaryPred>(N)->getChildren())
        F(C);
      break;
    case PredKind::LoopAll:
      F(cast<LoopAllPred>(N)->getBody());
      break;
    case PredKind::CallSite:
      F(cast<CallSitePred>(N)->getBody());
      break;
    }
  };
  // Pred-node nesting depth, memoized and saturated at Cap + 1.
  std::unordered_map<const Pred *, unsigned> Memo;
  struct Frame {
    const Pred *P;
    bool ChildrenPushed;
  };
  std::vector<Frame> Stack{{Root, false}};
  while (!Stack.empty()) {
    Frame F = Stack.back();
    Stack.pop_back();
    if (Memo.count(F.P))
      continue;
    if (!F.ChildrenPushed) {
      Stack.push_back({F.P, true});
      ForEachChild(F.P, [&](const Pred *C) {
        if (!Memo.count(C))
          Stack.push_back({C, false});
      });
      continue;
    }
    unsigned MaxChild = 0;
    ForEachChild(F.P, [&](const Pred *C) {
      auto It = Memo.find(C);
      unsigned D = It == Memo.end() ? Cap + 1 : It->second;
      if (D > MaxChild)
        MaxChild = D;
    });
    Memo.emplace(F.P, MaxChild >= Cap ? Cap + 1 : MaxChild + 1);
  }
  if (Memo.at(Root) > Cap)
    return false;
  // Every leaf expression must fit the expression lowering cap too.
  std::vector<const Pred *> Walk{Root};
  std::unordered_set<const Pred *> Seen;
  while (!Walk.empty()) {
    const Pred *N = Walk.back();
    Walk.pop_back();
    if (!Seen.insert(N).second)
      continue;
    std::vector<const sym::Expr *> Leaves;
    if (const auto *C = dyn_cast<CmpPred>(N)) {
      Leaves.push_back(C->getExpr());
    } else if (const auto *D = dyn_cast<DividesPred>(N)) {
      Leaves.push_back(D->getDivisor());
      Leaves.push_back(D->getValue());
    } else if (const auto *LA = dyn_cast<LoopAllPred>(N)) {
      Leaves.push_back(LA->getLo());
      Leaves.push_back(LA->getHi());
    }
    for (const sym::Expr *E : Leaves)
      if (exprNestDepth(E, LoweringMaxNestDepth) > LoweringMaxNestDepth)
        return false;
    ForEachChild(N, [&](const Pred *C) { Walk.push_back(C); });
  }
  return true;
}

} // namespace

std::unique_ptr<CompiledPred> CompiledPred::compile(const Pred *P,
                                                    const sym::Context &Ctx) {
  // Resource guards (graceful demotion contract, docs/FUZZING.md): a
  // predicate too deep or too large to lower returns null here; callers
  // (PredCompileCache, USR gate lowering) fall back to tryEvalPred and
  // the governor counts the demotion in ExecStats::GuardDemotions.
  if (!predLoweringFits(P, LoweringMaxNestDepth))
    return nullptr;
  std::unique_ptr<CompiledPred> CP(new CompiledPred());
  CP->Source = P;
  PredCompiler C(Ctx, *CP);
  C.compileRoot(P);
  if (C.exceeded() || CP->PCode.size() > LoweringMaxCodeLen ||
      CP->XCode.size() > LoweringMaxCodeLen)
    return nullptr;
  return CP;
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

/// Per-evaluation state: resolved symbol slots, memo table and
/// preallocated evaluation stacks (compile() bounds their depths, so the
/// hot loop runs on raw pointers with no size checks). Copied per worker
/// by the parallel evaluator (the copies share the immutable ArrayBinding
/// storage behind the raw pointers).
struct CompiledPred::Frame {
  std::vector<int64_t> ScalarVals;
  std::vector<uint8_t> ScalarBound;
  std::vector<const sym::ArrayBinding *> Arrays;
  std::vector<int8_t> Memo; // -1 unset, else a tri-state.
  std::vector<int64_t> XStack;
  std::vector<uint8_t> PStack;
  struct LoopState {
    uint32_t Desc;
    int64_t Cur, Hi;
    int64_t SavedVal;
    uint8_t SavedBound;
  };
  std::vector<LoopState> LoopStack;
  std::vector<uint32_t> RetStack;
  /// Block-tier lane state (sized only for block-capable predicates):
  /// structure-of-arrays stacks of PredBlockWidth lanes per row, plus a
  /// separate return stack so a memo miss's scalar run (which uses
  /// RetStack) cannot clobber an in-flight block call chain.
  std::vector<uint8_t> BTri;
  std::vector<int64_t> BXStack;
  std::vector<uint32_t> BRet;
  EvalStats Stats;
};

bool CompiledPred::bindFrame(Frame &F, const sym::Bindings &B) const {
  F.ScalarVals.assign(ScalarSlots.size(), 0);
  F.ScalarBound.assign(ScalarSlots.size(), 0);
  for (size_t I = 0; I < ScalarSlots.size(); ++I)
    if (auto V = B.scalar(ScalarSlots[I])) {
      F.ScalarVals[I] = *V;
      F.ScalarBound[I] = 1;
    }
  F.Arrays.resize(ArraySlots.size());
  for (size_t I = 0; I < ArraySlots.size(); ++I)
    F.Arrays[I] = B.array(ArraySlots[I]);
  F.Memo.assign(NumMemoSlots, -1);
  // Exact depth bounds, precomputed at compile time (finalize()): the
  // peak stack depths of the emitted code, not the code-length + slack
  // over-approximation this used to allocate.
  F.XStack.resize(XMaxDepth);
  F.PStack.resize(PMaxDepth);
  F.LoopStack.resize(MaxLoopNest);
  F.RetStack.resize(NumSubs);
  if (BlockOk || MainBlockOk) {
    F.BTri.resize(static_cast<size_t>(PMaxDepth) * PredBlockWidth);
    F.BXStack.resize(static_cast<size_t>(XMaxDepth) * PredBlockWidth);
    F.BRet.resize(NumSubs);
  }
  return true;
}

std::optional<int64_t> CompiledPred::evalExpr(uint32_t Begin, uint32_t End,
                                              Frame &F) const {
  return runExprCode(XCode.data(), Begin, End, F.ScalarVals.data(),
                     F.ScalarBound.data(), F.Arrays.data(),
                     F.XStack.data());
}

uint8_t CompiledPred::run(uint32_t IpBegin, uint32_t IpEnd, Frame &F) const {
  uint8_t *St = F.PStack.data();
  size_t SP = 0;
  Frame::LoopState *LoopSt = F.LoopStack.data();
  size_t LSP = 0;
  uint32_t *RetSt = F.RetStack.data();
  size_t RSP = 0;
  const PredInstr *Code = PCode.data();
  uint32_t Ip = IpBegin;
  while (Ip != IpEnd) {
    const PredInstr &I = Code[Ip];
    switch (I.Opcode) {
    case PredInstr::Op::PushBool:
      St[SP++] = I.Aux;
      assert(SP <= PMaxDepth && "tri-state stack exceeded precomputed depth");
      ++Ip;
      break;
    case PredInstr::Op::LeafCmp: {
      auto V = evalExpr(I.A, I.B, F);
      uint8_t R = TriUnknown;
      if (V) {
        ++F.Stats.LeafEvals;
        switch (static_cast<CmpRel>(I.Aux)) {
        case CmpRel::GE0:
          R = *V >= 0 ? TriTrue : TriFalse;
          break;
        case CmpRel::EQ0:
          R = *V == 0 ? TriTrue : TriFalse;
          break;
        case CmpRel::NE0:
          R = *V != 0 ? TriTrue : TriFalse;
          break;
        }
      }
      St[SP++] = R;
      assert(SP <= PMaxDepth && "tri-state stack exceeded precomputed depth");
      ++Ip;
      break;
    }
    case PredInstr::Op::LeafDivides: {
      auto DV = evalExpr(I.A, I.B, F);
      auto VV = evalExpr(I.C, I.D, F);
      uint8_t R = TriUnknown;
      if (DV && VV) {
        ++F.Stats.LeafEvals;
        R = dividesHolds(*DV, *VV, I.Aux != 0) ? TriTrue : TriFalse;
      }
      St[SP++] = R;
      ++Ip;
      break;
    }
    case PredInstr::Op::AndStep: {
      const uint8_t C = St[--SP];
      uint8_t &Acc = St[SP - 1];
      if (C == TriFalse)
        Acc = TriFalse;
      else if (C == TriUnknown && Acc == TriTrue)
        Acc = TriUnknown;
      Ip = Acc == TriFalse ? I.A : Ip + 1;
      break;
    }
    case PredInstr::Op::OrStep: {
      const uint8_t C = St[--SP];
      uint8_t &Acc = St[SP - 1];
      if (C == TriTrue)
        Acc = TriTrue;
      else if (C == TriUnknown && Acc == TriFalse)
        Acc = TriUnknown;
      Ip = Acc == TriTrue ? I.A : Ip + 1;
      break;
    }
    case PredInstr::Op::LoopBegin: {
      const CompiledLoop &L = Loops[I.A];
      auto Lo = evalExpr(L.LoExprBegin, L.LoExprEnd, F);
      auto Hi = evalExpr(L.HiExprBegin, L.HiExprEnd, F);
      if (!Lo || !Hi) {
        St[SP++] = TriUnknown;
        Ip = L.EndIp;
        break;
      }
      if (*Lo > *Hi) {
        St[SP++] = TriTrue;
        Ip = L.EndIp;
        break;
      }
      LoopSt[LSP++] = Frame::LoopState{I.A, *Lo, *Hi,
                                       F.ScalarVals[L.VarSlot],
                                       F.ScalarBound[L.VarSlot]};
      F.ScalarVals[L.VarSlot] = *Lo;
      F.ScalarBound[L.VarSlot] = 1;
      ++F.Stats.LoopIters;
      Ip = L.BodyBegin;
      break;
    }
    case PredInstr::Op::LoopStep: {
      const uint8_t R = St[--SP];
      Frame::LoopState &LS = LoopSt[LSP - 1];
      const CompiledLoop &L = Loops[LS.Desc];
      if (R == TriTrue && LS.Cur < LS.Hi) {
        ++LS.Cur;
        F.ScalarVals[L.VarSlot] = LS.Cur;
        ++F.Stats.LoopIters;
        Ip = L.BodyBegin;
        break;
      }
      F.ScalarVals[L.VarSlot] = LS.SavedVal;
      F.ScalarBound[L.VarSlot] = LS.SavedBound;
      --LSP;
      St[SP++] = R;
      Ip = L.EndIp;
      break;
    }
    case PredInstr::Op::MemoCheck: {
      const int8_t M = F.Memo[I.A];
      if (M >= 0) {
        ++F.Stats.MemoHits;
        St[SP++] = static_cast<uint8_t>(M);
        Ip = I.B;
      } else {
        ++Ip;
      }
      break;
    }
    case PredInstr::Op::MemoStore:
      F.Memo[I.A] = static_cast<int8_t>(St[SP - 1]);
      ++Ip;
      break;
    case PredInstr::Op::CallSub:
      RetSt[RSP++] = Ip + 1;
      Ip = I.A;
      break;
    case PredInstr::Op::Ret:
      Ip = RetSt[--RSP];
      break;
    }
  }
  assert(SP == 1 && "predicate code must leave one value");
  return St[SP - 1];
}

//===----------------------------------------------------------------------===//
// Block-vectorized tier
//===----------------------------------------------------------------------===//

void CompiledPred::runBodyBlock(uint32_t IpBegin, uint32_t IpEnd,
                                uint32_t VarSlot, int64_t VarBase,
                                unsigned Cnt, Frame &F, uint8_t *Out) const {
  constexpr unsigned W = PredBlockWidth;
  assert(Cnt >= 1 && Cnt <= W && "block width out of range");
  uint8_t *St = F.BTri.data();
  size_t SP = 0;
  uint32_t *RetSt = F.BRet.data();
  size_t RSP = 0;
  const PredInstr *Code = PCode.data();
  uint32_t Ip = IpBegin;
  while (Ip != IpEnd) {
    const PredInstr &I = Code[Ip];
    switch (I.Opcode) {
    case PredInstr::Op::PushBool: {
      uint8_t *R = St + SP++ * W;
      for (unsigned L = 0; L < Cnt; ++L)
        R[L] = I.Aux;
      ++Ip;
      break;
    }
    case PredInstr::Op::LeafCmp: {
      int64_t Vals[W];
      const uint32_t FailM = runExprCodeBlock(
          XCode.data(), I.A, I.B, F.ScalarVals.data(), F.ScalarBound.data(),
          F.Arrays.data(), VarSlot, VarBase, Cnt, F.BXStack.data(), Vals);
      uint8_t *R = St + SP++ * W;
      switch (static_cast<CmpRel>(I.Aux)) {
      case CmpRel::GE0:
        for (unsigned L = 0; L < Cnt; ++L)
          R[L] = Vals[L] >= 0 ? TriTrue : TriFalse;
        break;
      case CmpRel::EQ0:
        for (unsigned L = 0; L < Cnt; ++L)
          R[L] = Vals[L] == 0 ? TriTrue : TriFalse;
        break;
      case CmpRel::NE0:
        for (unsigned L = 0; L < Cnt; ++L)
          R[L] = Vals[L] != 0 ? TriTrue : TriFalse;
        break;
      }
      if (FailM) {
        // Poisoned lanes degrade — individually — to the scalar path's
        // conservative-unknown result.
        for (unsigned L = 0; L < Cnt; ++L)
          if (FailM & (1u << L))
            R[L] = TriUnknown;
        const unsigned Poisoned =
            static_cast<unsigned>(__builtin_popcount(FailM));
        F.Stats.LanesPoisoned += Poisoned;
        F.Stats.LeafEvals += Cnt - Poisoned;
      } else {
        F.Stats.LeafEvals += Cnt;
      }
      ++Ip;
      break;
    }
    case PredInstr::Op::LeafDivides: {
      int64_t DV[W], VV[W];
      const uint32_t FailM =
          runExprCodeBlock(XCode.data(), I.A, I.B, F.ScalarVals.data(),
                           F.ScalarBound.data(), F.Arrays.data(), VarSlot,
                           VarBase, Cnt, F.BXStack.data(), DV) |
          runExprCodeBlock(XCode.data(), I.C, I.D, F.ScalarVals.data(),
                           F.ScalarBound.data(), F.Arrays.data(), VarSlot,
                           VarBase, Cnt, F.BXStack.data(), VV);
      uint8_t *R = St + SP++ * W;
      const bool Neg = I.Aux != 0;
      for (unsigned L = 0; L < Cnt; ++L)
        R[L] = dividesHolds(DV[L], VV[L], Neg) ? TriTrue : TriFalse;
      if (FailM) {
        for (unsigned L = 0; L < Cnt; ++L)
          if (FailM & (1u << L))
            R[L] = TriUnknown;
        const unsigned Poisoned =
            static_cast<unsigned>(__builtin_popcount(FailM));
        F.Stats.LanesPoisoned += Poisoned;
        F.Stats.LeafEvals += Cnt - Poisoned;
      } else {
        F.Stats.LeafEvals += Cnt;
      }
      ++Ip;
      break;
    }
    case PredInstr::Op::AndStep: {
      // No short-circuit jump: every child is folded per lane. Sound
      // because the tri-state conjunction is dominance-monotone (false
      // absorbs; unknown over true) and child evaluation is side-effect
      // free, so evaluating children a scalar run would have skipped
      // cannot change any lane's result. Branchless: with F=0, T=1, U=2,
      // and(a,b) = min(a*b, 2) — 0 absorbs through the product, T*T=1,
      // and any unknown makes the product 2 or 4.
      const uint8_t *C = St + --SP * W;
      uint8_t *Acc = St + (SP - 1) * W;
      for (unsigned L = 0; L < Cnt; ++L) {
        const uint8_t P = static_cast<uint8_t>(Acc[L] * C[L]);
        Acc[L] = P > TriUnknown ? TriUnknown : P;
      }
      ++Ip;
      break;
    }
    case PredInstr::Op::OrStep: {
      // Branchless dual: true absorbs, else max picks unknown over false.
      const uint8_t *C = St + --SP * W;
      uint8_t *Acc = St + (SP - 1) * W;
      for (unsigned L = 0; L < Cnt; ++L) {
        const bool AnyTrue = Acc[L] == TriTrue || C[L] == TriTrue;
        const uint8_t Mx = Acc[L] > C[L] ? Acc[L] : C[L];
        Acc[L] = AnyTrue ? TriTrue : Mx;
      }
      ++Ip;
      break;
    }
    case PredInstr::Op::MemoCheck: {
      int8_t M = F.Memo[I.A];
      if (M < 0) {
        // First block to get here: the region is invariant in every
        // enclosing loop variable (it never reads VarSlot), so one scalar
        // run — which also executes the MemoStore — serves every lane.
        // It runs on the scalar stacks (PStack/LoopStack/RetStack), which
        // the block walker does not touch.
        M = static_cast<int8_t>(run(Ip + 1, I.B, F));
        assert(F.Memo[I.A] == M && "memo region must store its result");
        // Lanes past the first are served from the fresh memo entry —
        // count them as hits, matching the scalar path's per-iteration
        // accounting.
        F.Stats.MemoHits += Cnt - 1;
      } else {
        F.Stats.MemoHits += Cnt;
      }
      uint8_t *R = St + SP++ * W;
      for (unsigned L = 0; L < Cnt; ++L)
        R[L] = static_cast<uint8_t>(M);
      Ip = I.B;
      break;
    }
    case PredInstr::Op::MemoStore:
      // Unreachable: MemoCheck always jumps past its region in block mode
      // (the scalar run above executes the store).
      assert(false && "MemoStore reached by block walker");
      ++Ip;
      break;
    case PredInstr::Op::CallSub:
      RetSt[RSP++] = Ip + 1;
      Ip = I.A;
      break;
    case PredInstr::Op::Ret:
      Ip = RetSt[--RSP];
      break;
    case PredInstr::Op::LoopBegin:
    case PredInstr::Op::LoopStep:
      halo_unreachable("loop opcode in block-compatible range");
    }
  }
  assert(SP == 1 && "predicate code must leave one value");
  for (unsigned L = 0; L < Cnt; ++L)
    Out[L] = St[L];
}

/// Index of the first non-true lane in iteration order, or \p Cnt when
/// every lane is true. The all-true case — the steady state of a passing
/// sweep — is two quadword compares instead of sixteen byte branches;
/// only a block that actually decides pays the byte scan.
static unsigned firstNonTrueLane(const uint8_t *Out, unsigned Cnt) {
  static_assert(TriTrue == 1, "quadword all-true pattern assumes TriTrue==1");
  constexpr uint64_t AllTrueQ = 0x0101010101010101ULL;
  unsigned L = 0;
  for (; L + 8 <= Cnt; L += 8) {
    uint64_t Q;
    std::memcpy(&Q, Out + L, 8);
    if (Q != AllTrueQ)
      break;
  }
  for (; L < Cnt; ++L)
    if (Out[L] != TriTrue)
      return L;
  return Cnt;
}

uint8_t CompiledPred::runRootBlocked(Frame &F, int64_t Lo, int64_t Hi) const {
  const CompiledLoop &L = Loops[static_cast<size_t>(RootLoop)];
  uint8_t Out[PredBlockWidth];
  // The walker feeds lane values straight into the leaf evaluations, so
  // the loop variable's frame slot is never written (nothing to restore).
  for (int64_t Base = Lo;; Base += PredBlockWidth) {
    const unsigned Cnt = static_cast<unsigned>(
        std::min<int64_t>(PredBlockWidth, Hi - Base + 1));
    F.Stats.LoopIters += Cnt;
    runBodyBlock(L.BodyBegin, L.StepIp, L.VarSlot, Base, Cnt, F, Out);
    // Lane-mask early exit: the first non-true lane in iteration order
    // decides, exactly like the scalar loop's early exit (including
    // whether false or unknown is reported).
    const unsigned Lane = firstNonTrueLane(Out, Cnt);
    if (Lane < Cnt)
      return Out[Lane];
    if (Base + static_cast<int64_t>(Cnt) > Hi)
      return TriTrue;
  }
}

/// Reusable per-thread frame: bindFrame() resizes with assign()/resize(),
/// so after warm-up repeated evaluations allocate nothing. Safe because
/// eval()/evalParallel() never re-enter on the same thread (the parallel
/// workers copy the bound frame into their own locals).
CompiledPred::Frame &CompiledPred::scratchFrame() {
  thread_local Frame F;
  return F;
}

std::optional<bool> CompiledPred::runMainOnFrame(Frame &F, EvalStats *Stats,
                                                 BlockEval Block) const {
  uint8_t R = 0;
  bool Blocked = false;
  if (Block != BlockEval::Off && RootLoop >= 0 && BlockOk) {
    // Root-loop block sweep: evaluate the bounds here (the scalar path
    // does it inside LoopBegin) and hand the range to the block walker.
    // Unknown bounds fall through to the scalar path, which recomputes
    // them and pushes the conservative result.
    const CompiledLoop &L = Loops[static_cast<size_t>(RootLoop)];
    auto Lo = evalExpr(L.LoExprBegin, L.LoExprEnd, F);
    auto Hi = evalExpr(L.HiExprBegin, L.HiExprEnd, F);
    if (Lo && Hi &&
        (Block == BlockEval::Force || autoBlocks(*Hi - *Lo + 1))) {
      Blocked = true;
      ++F.Stats.BlockEvals;
      R = *Lo > *Hi ? TriTrue : runRootBlocked(F, *Lo, *Hi);
    }
  }
  if (!Blocked) {
    ++F.Stats.ScalarEvals;
    R = run(0, MainCodeEnd, F);
  }
  F.Stats.CompiledEvals = 1;
  if (Stats)
    *Stats += F.Stats;
  if (R == TriUnknown)
    return std::nullopt;
  return R == TriTrue;
}

std::optional<bool> CompiledPred::eval(const sym::Bindings &B,
                                       EvalStats *Stats,
                                       BlockEval Block) const {
  Frame &F = scratchFrame();
  F.Stats = EvalStats();
  bindFrame(F, B);
  return runMainOnFrame(F, Stats, Block);
}

std::optional<bool>
CompiledPred::evalWithSlots(const sym::Bindings &B,
                            const std::pair<uint32_t, int64_t> *Overrides,
                            size_t N, EvalStats *Stats) const {
  Frame &F = scratchFrame();
  F.Stats = EvalStats();
  bindFrame(F, B);
  for (size_t I = 0; I < N; ++I) {
    F.ScalarVals[Overrides[I].first] = Overrides[I].second;
    F.ScalarBound[Overrides[I].first] = 1;
  }
  // Scalar tier always: single-point gate probes have no root loop to
  // sweep (the block counterpart is evalTriBlock).
  return runMainOnFrame(F, Stats, BlockEval::Off);
}

void CompiledPred::evalTriBlock(const sym::Bindings &B,
                                const std::pair<uint32_t, int64_t> *Overrides,
                                size_t N, uint32_t VarSlot, int64_t VarBase,
                                unsigned Cnt, uint8_t *OutTri,
                                EvalStats *Stats) const {
  assert(MainBlockOk && "evalTriBlock requires a loop-free main range");
  Frame &F = scratchFrame();
  F.Stats = EvalStats();
  bindFrame(F, B);
  for (size_t I = 0; I < N; ++I) {
    F.ScalarVals[Overrides[I].first] = Overrides[I].second;
    F.ScalarBound[Overrides[I].first] = 1;
  }
  runBodyBlock(0, MainCodeEnd, VarSlot, VarBase, Cnt, F, OutTri);
  F.Stats.CompiledEvals = 1;
  ++F.Stats.BlockEvals;
  if (Stats)
    *Stats += F.Stats;
}

//===----------------------------------------------------------------------===//
// Pooled frames (analyze-once / execute-many)
//===----------------------------------------------------------------------===//

CompiledPred::PooledFrame::PooledFrame() = default;
CompiledPred::PooledFrame::~PooledFrame() = default;
CompiledPred::PooledFrame::PooledFrame(PooledFrame &&) noexcept = default;
CompiledPred::PooledFrame &
CompiledPred::PooledFrame::operator=(PooledFrame &&) noexcept = default;

bool CompiledPred::bindPooled(PooledFrame &PF, const sym::Bindings &B) const {
  if (!PF.Main)
    PF.Main = std::make_unique<Frame>();
  const sym::BindingsStamp S = B.stamp();
  // Stamp equality guarantees B is the same live object, unmutated since
  // the frame was bound: the scalar values, array pointers and memo
  // entries in the frame are all still exact.
  if (PF.BoundTo == this && PF.Stamp == S)
    return true;
  bindFrame(*PF.Main, B);
  PF.BoundTo = this;
  PF.Stamp = S;
  PF.WorkersValid = false;
  return false;
}

std::optional<bool> CompiledPred::evalPooled(PooledFrame &PF,
                                             const sym::Bindings &B,
                                             EvalStats *Stats,
                                             BlockEval Block) const {
  const bool Reused = bindPooled(PF, B);
  Frame &F = *PF.Main;
  F.Stats = EvalStats();
  if (Reused)
    F.Stats.FrameRebindsSkipped = 1;
  else
    F.Stats.FrameBinds = 1;
  return runMainOnFrame(F, Stats, Block);
}

std::optional<bool>
CompiledPred::evalParallelPooled(PooledFrame &PF, const sym::Bindings &B,
                                 ThreadPool &Pool, EvalStats *Stats,
                                 int64_t MinParallelIters,
                                 const support::CancelToken *Cancel,
                                 BlockEval Block) const {
  if (RootLoop < 0 || Pool.numThreads() <= 1)
    return evalPooled(PF, B, Stats, Block);
  const bool Reused = bindPooled(PF, B);
  Frame &F = *PF.Main;
  F.Stats = EvalStats();
  if (Reused)
    F.Stats.FrameRebindsSkipped = 1;
  else
    F.Stats.FrameBinds = 1;
  return evalParallelImpl(F, &PF, Pool, Stats, MinParallelIters, Cancel,
                          Block);
}

std::optional<bool> CompiledPred::evalParallelImpl(
    Frame &F, PooledFrame *PF, ThreadPool &Pool, EvalStats *Stats,
    int64_t MinParallelIters, const support::CancelToken *Cancel,
    BlockEval Block) const {
  const CompiledLoop &L = Loops[static_cast<size_t>(RootLoop)];
  auto Lo = evalExpr(L.LoExprBegin, L.LoExprEnd, F);
  auto Hi = evalExpr(L.HiExprBegin, L.HiExprEnd, F);
  if (!Lo || !Hi) {
    if (Stats) {
      F.Stats.CompiledEvals = 1;
      F.Stats.ScalarEvals = 1;
      *Stats += F.Stats;
    }
    return std::nullopt;
  }
  if (*Lo > *Hi) {
    if (Stats) {
      F.Stats.CompiledEvals = 1;
      F.Stats.ScalarEvals = 1;
      *Stats += F.Stats;
    }
    return true;
  }
  const unsigned NT = Pool.numThreads();
  if (support::stopRequested(Cancel))
    return std::nullopt; // Cancelled: no answer, not "false".
  if (*Hi - *Lo + 1 < MinParallelIters * static_cast<int64_t>(NT))
    return runMainOnFrame(F, Stats, Block);
  const bool UseBlock =
      Block != BlockEval::Off && BlockOk &&
      (Block == BlockEval::Force || autoBlocks(*Hi - *Lo + 1));

  // Pooled worker frames are copy-assigned from the bound main frame on
  // (re)bind so their buffers keep capacity, and simply reused when the
  // stamp is unchanged — worker-local mutations (the root loop variable
  // slot, warm memo entries) stay valid under the same bindings.
  if (PF) {
    if (PF->Workers.size() < NT) {
      PF->Workers.resize(NT);
      PF->WorkersValid = false;
    }
    if (!PF->WorkersValid || PF->WorkersBoundFor < NT) {
      for (unsigned W = 0; W < NT; ++W)
        PF->Workers[W] = F;
      PF->WorkersBoundFor = NT;
      PF->WorkersValid = true;
    }
  }

  // Exact first-failure frontier: a worker may stop as soon as its current
  // iteration lies beyond the earliest known non-true iteration; every
  // iteration before the final frontier is therefore fully evaluated, so
  // the merged result (outcome at the minimal recorded iteration) is
  // identical to the sequential early-exit semantics of tryEvalPred,
  // including which of false/unknown decides.
  std::atomic<int64_t> FirstBad{INT64_MAX};
  std::vector<uint8_t> Outcome(NT, TriTrue);
  std::vector<int64_t> BadAt(NT, INT64_MAX);
  std::vector<EvalStats> WorkerStats(NT);

  Pool.parallelAllOf(
      *Lo, *Hi + 1,
      [&](int64_t BLo, int64_t BHi, unsigned W, std::atomic<bool> &) -> bool {
        Frame ScratchW; // Private slots + memo per worker (scratch mode).
        if (!PF)
          ScratchW = F;
        Frame &FW = PF ? PF->Workers[W] : ScratchW;
        FW.Stats = EvalStats();
        bool Ok = true;
        if (UseBlock) {
          // Block sweep inside the chunk. The frontier check moves to
          // block granularity, which stays exact: the frontier only
          // decreases, so every iteration below the final frontier lies
          // in a block whose base passed the check and was fully
          // evaluated; lanes past a failing lane are evaluated and
          // discarded (side-effect free). Chunk boundaries — the
          // CancelToken check points — are unchanged.
          uint8_t OutT[PredBlockWidth];
          for (int64_t Base = BLo; Base < BHi && Ok;
               Base += PredBlockWidth) {
            if (Base > FirstBad.load(std::memory_order_relaxed))
              break;
            const unsigned Cnt = static_cast<unsigned>(
                std::min<int64_t>(PredBlockWidth, BHi - Base));
            FW.Stats.LoopIters += Cnt;
            runBodyBlock(L.BodyBegin, L.StepIp, L.VarSlot, Base, Cnt, FW,
                         OutT);
            const unsigned Lane = firstNonTrueLane(OutT, Cnt);
            if (Lane < Cnt) {
              const int64_t I = Base + static_cast<int64_t>(Lane);
              Outcome[W] = OutT[Lane];
              BadAt[W] = I;
              int64_t Cur = FirstBad.load(std::memory_order_relaxed);
              while (I < Cur && !FirstBad.compare_exchange_weak(
                                    Cur, I, std::memory_order_relaxed)) {
              }
              Ok = false;
            }
          }
        } else {
          for (int64_t I = BLo; I < BHi; ++I) {
            if (I > FirstBad.load(std::memory_order_relaxed))
              break;
            FW.ScalarVals[L.VarSlot] = I;
            FW.ScalarBound[L.VarSlot] = 1;
            ++FW.Stats.LoopIters;
            uint8_t R = run(L.BodyBegin, L.StepIp, FW);
            if (R != TriTrue) {
              Outcome[W] = R;
              BadAt[W] = I;
              int64_t Cur = FirstBad.load(std::memory_order_relaxed);
              while (I < Cur && !FirstBad.compare_exchange_weak(
                                    Cur, I, std::memory_order_relaxed)) {
              }
              Ok = false;
              break;
            }
          }
        }
        WorkerStats[W] = FW.Stats;
        return Ok;
      },
      Cancel);

  EvalStats Agg;
  for (unsigned W = 0; W < NT; ++W)
    Agg += WorkerStats[W];
  Agg.CompiledEvals = 1;
  if (UseBlock)
    Agg.BlockEvals = 1;
  else
    Agg.ScalarEvals = 1;
  Agg.FrameBinds = F.Stats.FrameBinds;
  Agg.FrameRebindsSkipped = F.Stats.FrameRebindsSkipped;
  if (Stats)
    *Stats += Agg;

  // A fired token may have suppressed blocks entirely, so Outcome/BadAt
  // no longer describe the true first-failure frontier: discard them.
  // (Counted stats above only describe the work actually done.)
  if (support::stopRequested(Cancel))
    return std::nullopt;

  int64_t Best = INT64_MAX;
  uint8_t R = TriTrue;
  for (unsigned W = 0; W < NT; ++W)
    if (BadAt[W] < Best) {
      Best = BadAt[W];
      R = Outcome[W];
    }
  if (R == TriUnknown)
    return std::nullopt;
  return R == TriTrue;
}

std::optional<bool>
CompiledPred::evalParallel(const sym::Bindings &B, ThreadPool &Pool,
                           EvalStats *Stats, int64_t MinParallelIters,
                           const support::CancelToken *Cancel,
                           BlockEval Block) const {
  if (RootLoop < 0 || Pool.numThreads() <= 1)
    return eval(B, Stats, Block);
  Frame &F = scratchFrame();
  F.Stats = EvalStats();
  bindFrame(F, B);
  return evalParallelImpl(F, nullptr, Pool, Stats, MinParallelIters, Cancel,
                          Block);
}
