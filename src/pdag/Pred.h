//===- pdag/Pred.h - The PDAG predicate language ---------------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predicate language of Section 3 of the paper: an interned DAG whose
/// leaves are boolean expressions over symbolic integers and whose interior
/// nodes are n-ary and/or, irreducible loop-level conjunctions
/// `AND_{i=lo..hi} P(i)`, and untranslatable call sites.
///
/// Leaves are canonicalized so that structural equality catches most
/// semantic equality:
///  - comparisons are normalized to `e >= 0`, `e == 0`, `e != 0` with the
///    coefficient gcd divided out (integer tightening),
///  - divisibility tests `d | e` fold when d is constant,
///  - `and`/`or` constructors flatten, sort, deduplicate, detect
///    complementary literals, and fold constants.
///
/// The language is *closed under the factorization rules* of Fig. 5: every
/// predicate the translation scheme F emits is representable without
/// approximation, which is the property that makes the predicate program
/// less conservative than flattened-predicate approaches (Sec. 3).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PDAG_PRED_H
#define HALO_PDAG_PRED_H

#include "sym/Expr.h"

#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace halo {
namespace pdag {

enum class PredKind : uint8_t {
  True,
  False,
  Cmp,      // e >= 0 | e == 0 | e != 0
  Divides,  // d | e  (optionally negated)
  And,      // n-ary conjunction
  Or,       // n-ary disjunction
  LoopAll,  // AND_{var=lo..hi} body   (irreducible loop conjunction)
  CallSite, // predicate behind an untranslatable call site
};

class PredContext;

/// Immutable, interned predicate node.
class Pred {
public:
  virtual ~Pred() = default;

  PredKind getKind() const { return Kind; }
  uint32_t getId() const { return Id; }

  bool isTrue() const { return Kind == PredKind::True; }
  bool isFalse() const { return Kind == PredKind::False; }

  /// Sorted set of symbols this predicate reads (transitively).
  const std::vector<sym::SymbolId> &freeSymbols() const { return FreeSyms; }
  bool dependsOn(sym::SymbolId S) const;
  /// True iff no free symbol is (re)defined at loop depth >= LoopDepth.
  bool isInvariantAtDepth(int LoopDepth, const sym::Context &Ctx) const;

  /// Maximum nesting depth of LoopAll nodes: 0 means an O(1) predicate,
  /// 1 means O(N), 2 means O(N^2), ... (the paper's complexity classes,
  /// Sec. 3.5/3.6).
  int loopDepth() const { return LoopDepthCache; }

  void print(std::ostream &OS, const sym::Context &Ctx) const;
  std::string toString(const sym::Context &Ctx) const;

protected:
  Pred(PredKind K, std::vector<sym::SymbolId> Free, int LoopDepth)
      : Kind(K), FreeSyms(std::move(Free)), LoopDepthCache(LoopDepth) {}

private:
  PredKind Kind;
  uint32_t Id = 0;
  std::vector<sym::SymbolId> FreeSyms;
  int LoopDepthCache;
  friend class PredContext;
};

/// Relation of a canonical comparison leaf against zero.
enum class CmpRel : uint8_t { GE0, EQ0, NE0 };

/// Comparison leaf `E rel 0`.
class CmpPred : public Pred {
public:
  const sym::Expr *getExpr() const { return E; }
  CmpRel getRel() const { return Rel; }

  static bool classof(const Pred *P) { return P->getKind() == PredKind::Cmp; }

private:
  CmpPred(const sym::Expr *E, CmpRel Rel, std::vector<sym::SymbolId> Free)
      : Pred(PredKind::Cmp, std::move(Free), 0), E(E), Rel(Rel) {}
  const sym::Expr *E;
  CmpRel Rel;
  friend class PredContext;
};

/// Divisibility leaf `Divisor | Value` (negated when Neg is set) — used by
/// the interleaved-access disjointness test of Sec. 3.2.
class DividesPred : public Pred {
public:
  const sym::Expr *getDivisor() const { return Divisor; }
  const sym::Expr *getValue() const { return Value; }
  bool isNegated() const { return Neg; }

  static bool classof(const Pred *P) {
    return P->getKind() == PredKind::Divides;
  }

private:
  DividesPred(const sym::Expr *D, const sym::Expr *V, bool Neg,
              std::vector<sym::SymbolId> Free)
      : Pred(PredKind::Divides, std::move(Free), 0), Divisor(D), Value(V),
        Neg(Neg) {}
  const sym::Expr *Divisor;
  const sym::Expr *Value;
  bool Neg;
  friend class PredContext;
};

/// N-ary and/or with sorted, deduplicated children.
class NaryPred : public Pred {
public:
  const std::vector<const Pred *> &getChildren() const { return Children; }
  bool isAnd() const { return getKind() == PredKind::And; }

  static bool classof(const Pred *P) {
    return P->getKind() == PredKind::And || P->getKind() == PredKind::Or;
  }

private:
  NaryPred(PredKind K, std::vector<const Pred *> C,
           std::vector<sym::SymbolId> Free, int LoopDepth)
      : Pred(K, std::move(Free), LoopDepth), Children(std::move(C)) {}
  std::vector<const Pred *> Children;
  friend class PredContext;
};

/// Irreducible loop-level conjunction `AND_{Var=Lo..Hi} Body` (e.g. the
/// paper's `AND_{i=1..N-1} NS <= 32*(IB(i+1)-IA(i)-IB(i)+1)` from Fig. 3b).
/// An empty iteration range (Lo > Hi) makes the node true.
class LoopAllPred : public Pred {
public:
  sym::SymbolId getVar() const { return Var; }
  const sym::Expr *getLo() const { return Lo; }
  const sym::Expr *getHi() const { return Hi; }
  const Pred *getBody() const { return Body; }

  static bool classof(const Pred *P) {
    return P->getKind() == PredKind::LoopAll;
  }

private:
  LoopAllPred(sym::SymbolId Var, const sym::Expr *Lo, const sym::Expr *Hi,
              const Pred *Body, std::vector<sym::SymbolId> Free,
              int LoopDepth)
      : Pred(PredKind::LoopAll, std::move(Free), LoopDepth), Var(Var), Lo(Lo),
        Hi(Hi), Body(Body) {}
  sym::SymbolId Var;
  const sym::Expr *Lo;
  const sym::Expr *Hi;
  const Pred *Body;
  friend class PredContext;
};

/// Predicate guarded by an untranslatable call site (the `P ./ CallSite`
/// nodes of Fig. 5). The callee name is kept for diagnostics; static
/// reasoning treats the node as opaque.
class CallSitePred : public Pred {
public:
  const std::string &getCallee() const { return Callee; }
  const Pred *getBody() const { return Body; }

  static bool classof(const Pred *P) {
    return P->getKind() == PredKind::CallSite;
  }

private:
  CallSitePred(std::string Callee, const Pred *Body,
               std::vector<sym::SymbolId> Free, int LoopDepth)
      : Pred(PredKind::CallSite, std::move(Free), LoopDepth),
        Callee(std::move(Callee)), Body(Body) {}
  std::string Callee;
  const Pred *Body;
  friend class PredContext;
};

/// Owns and interns predicates; provides canonicalizing constructors.
class PredContext {
public:
  explicit PredContext(sym::Context &SymCtx);
  ~PredContext();
  PredContext(const PredContext &) = delete;
  PredContext &operator=(const PredContext &) = delete;

  sym::Context &symCtx() { return SymCtx; }
  const sym::Context &symCtx() const { return SymCtx; }

  const Pred *getTrue() const { return TruePred; }
  const Pred *getFalse() const { return FalsePred; }
  const Pred *boolConst(bool B) const { return B ? TruePred : FalsePred; }

  //===-- Leaves ----------------------------------------------------------==/

  /// e >= 0 (canonicalized: gcd division with integer tightening).
  const Pred *ge0(const sym::Expr *E);
  /// e == 0 / e != 0 (canonicalized; infeasible congruences fold).
  const Pred *eq0(const sym::Expr *E);
  const Pred *ne0(const sym::Expr *E);
  /// d | e, optionally negated. Constant cases fold.
  const Pred *divides(const sym::Expr *D, const sym::Expr *E,
                      bool Neg = false);

  //===-- Comparison sugar --------------------------------------------------/

  const Pred *le(const sym::Expr *A, const sym::Expr *B); // A <= B
  const Pred *lt(const sym::Expr *A, const sym::Expr *B); // A <  B
  const Pred *ge(const sym::Expr *A, const sym::Expr *B); // A >= B
  const Pred *gt(const sym::Expr *A, const sym::Expr *B); // A >  B
  const Pred *eq(const sym::Expr *A, const sym::Expr *B); // A == B
  const Pred *ne(const sym::Expr *A, const sym::Expr *B); // A != B

  //===-- Connectives -------------------------------------------------------/

  const Pred *and2(const Pred *A, const Pred *B);
  const Pred *or2(const Pred *A, const Pred *B);
  const Pred *andN(std::vector<const Pred *> Cs);
  const Pred *orN(std::vector<const Pred *> Cs);

  /// AND_{Var=Lo..Hi} Body. Folds invariant bodies to
  /// `(Lo > Hi) or Body`, unrolls small constant ranges, and interns the
  /// irreducible rest.
  const Pred *loopAll(sym::SymbolId Var, const sym::Expr *Lo,
                      const sym::Expr *Hi, const Pred *Body);

  const Pred *callSite(const std::string &Callee, const Pred *Body);

  /// Exact negation; returns nullptr when the complement is not cheaply
  /// representable (LoopAll / CallSite). Callers fall back to the weaker
  /// factorization path in that case (see Sec. 3.1: F(S) alone is still a
  /// sufficient condition for a gated set to be empty).
  const Pred *tryNot(const Pred *P);

  /// Substitutes scalar symbols inside every leaf (used to instantiate a
  /// recurrence body at i, i+1, lo, hi...). Bound variables of LoopAll
  /// nodes are renamed on capture.
  const Pred *substitute(const Pred *P,
                         const std::map<sym::SymbolId, const sym::Expr *> &M);

  size_t numPreds() const { return Nodes.size(); }

private:
  const Pred *intern(std::unique_ptr<Pred> N, size_t Hash);
  const Pred *makeNary(PredKind K, std::vector<const Pred *> Cs);
  const Pred *makeCmp(const sym::Expr *E, CmpRel Rel);

  sym::Context &SymCtx;
  std::vector<std::unique_ptr<Pred>> Nodes;
  std::unordered_multimap<size_t, const Pred *> InternTable;
  const Pred *TruePred = nullptr;
  const Pred *FalsePred = nullptr;
};

} // namespace pdag
} // namespace halo

#endif // HALO_PDAG_PRED_H
