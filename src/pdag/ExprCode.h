//===- pdag/ExprCode.h - Shared expression bytecode ------------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The slot-resolved expression bytecode shared by the two compile-once
/// runtime engines: the predicate compiler (pdag/PredCompile.h) and the
/// USR interval-run compiler (usr/USRCompile.h). Both lower sym::Expr
/// trees into the same flat stack-machine code so that evaluation never
/// touches a sym::Bindings hash table: every scalar and index-array symbol
/// is resolved to a dense frame slot once per binding, and constants are
/// folded at compile time.
///
///  - ExprCodeBuilder interns symbol slots and emits canonical expressions
///    into a caller-owned code/slot-table triple (each compiled object owns
///    its own tables; the builder is compile-time only). It also tracks the
///    exact peak stack depth across every range it emits, so frames can be
///    sized precisely instead of code-length + 1.
///  - runExprCode executes a [Begin, End) range against bound slot arrays;
///    it returns nullopt when an unbound scalar or out-of-bounds array
///    read decides the value (the same conservative contract as
///    sym::tryEval).
///  - runExprCodeBlock is the block-vectorized tier: it evaluates one code
///    range for up to ExprBlockWidth consecutive values of a designated
///    loop-variable slot per dispatch, over a structure-of-arrays lane
///    stack, with a per-lane fail mask standing in for the scalar path's
///    nullopt (a poisoned lane degrades that lane only, not the block).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PDAG_EXPRCODE_H
#define HALO_PDAG_EXPRCODE_H

#include "sym/Eval.h"
#include "sym/Expr.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace halo {
namespace pdag {

/// Lane count of the block-vectorized evaluation tier: one
/// runExprCodeBlock dispatch covers this many consecutive loop-variable
/// values. 16 int64 lanes = two cache lines per stack row, wide enough to
/// amortize dispatch and narrow enough that a mid-block failure wastes
/// little work.
inline constexpr unsigned ExprBlockWidth = 16;

/// Lowering resource caps (the compile-tier guards; see docs/FUZZING.md).
/// Expressions or predicates nested deeper than this are not lowered —
/// the compile entry points (`CompiledPred::compile`, `CompiledUSR::compile`)
/// return null and the governor falls back to the reference interpreters,
/// counting the demotion in `rt::ExecStats::GuardDemotions`. Front-door
/// validation (ir/Validate.h) admits deeper structures than this cap, so
/// demotion — not rejection — is the contract for the gap in between.
inline constexpr unsigned LoweringMaxNestDepth = 200;
/// Ceiling on emitted bytecode size (instructions) per compiled object.
inline constexpr size_t LoweringMaxCodeLen = 1u << 20;

/// Nesting depth of \p E (leaves count 1), computed iteratively with an
/// explicit stack so hostile deeply-nested expressions cannot overflow the
/// C++ stack, and saturated at \p Cap + 1.
unsigned exprNestDepth(const sym::Expr *E, unsigned Cap);

/// One expression-bytecode instruction (operates on an int64 value stack).
/// Packed to 16 bytes: ArrayLoadOff is the only op that needs two slots,
/// and its index-scalar slot + small offset share the Imm field (see
/// packLoadOff); offsets outside int32 fall back to the unfused sequence.
struct ExprInstr {
  enum class Op : uint8_t {
    Const,        ///< push Imm
    Scalar,       ///< push scalar slot Slot (fail when unbound)
    ArrayLoad,    ///< pop index, push array slot Slot at index (fail OOB)
    ArrayLoadOff, ///< push array Slot at (scalar + offset), scalar slot and
                  ///< offset packed into Imm — the fused form of the
                  ///< ubiquitous A(i), A(i+1) accesses
    Min,          ///< pop b, a; push min(a, b)
    Max,          ///< pop b, a; push max(a, b)
    FloorDiv,     ///< pop a; push floor(a / Imm)
    Mod,          ///< pop a; push a - Imm * floor(a / Imm)
    Mul,          ///< pop b, a; push a * b
    MulConst,     ///< top *= Imm
    AddConst,     ///< top += Imm
    MulConstAdd,  ///< pop v; top += Imm * v   (monomial accumulate)
  };
  Op Opcode;
  uint32_t Slot = 0;
  int64_t Imm = 0;

  /// Packs an ArrayLoadOff operand pair: index-scalar slot in the high 32
  /// bits, offset (must fit int32) in the low 32.
  static int64_t packLoadOff(uint32_t IdxSlot, int32_t Off) {
    return static_cast<int64_t>((static_cast<uint64_t>(IdxSlot) << 32) |
                                static_cast<uint32_t>(Off));
  }
  uint32_t loadOffIdxSlot() const {
    return static_cast<uint32_t>(static_cast<uint64_t>(Imm) >> 32);
  }
  int64_t loadOffDelta() const {
    return static_cast<int32_t>(static_cast<uint32_t>(Imm));
  }
};
static_assert(sizeof(ExprInstr) == 16,
              "ExprInstr must stay two words; see packLoadOff");

/// Emits canonical sym::Expr trees as expression bytecode into a
/// caller-owned code vector, interning scalar/array symbols into the
/// caller's slot tables (slot index == position in the table). One builder
/// serves one compiled object; evaluation state is bound separately.
class ExprCodeBuilder {
public:
  ExprCodeBuilder(const sym::Context &Ctx, std::vector<ExprInstr> &Code,
                  std::vector<sym::SymbolId> &ScalarSlots,
                  std::vector<sym::SymbolId> &ArraySlots)
      : Ctx(Ctx), Code(Code), ScalarSlots(ScalarSlots),
        ArraySlots(ArraySlots) {}

  /// Emits \p E as a fresh code range; returns [Begin, End).
  std::pair<uint32_t, uint32_t> compile(const sym::Expr *E);

  uint32_t scalarSlot(sym::SymbolId S);
  uint32_t arraySlot(sym::SymbolId S);

  /// Exact peak stack depth over every range compiled so far (each range
  /// starts from an empty stack, so this is the per-object frame bound).
  uint32_t maxStackDepth() const { return MaxDepth; }

  /// True when any compiled range tripped a lowering resource guard
  /// (nesting beyond LoweringMaxNestDepth or code beyond
  /// LoweringMaxCodeLen). The offending range emits a balanced dummy
  /// constant so the code stream stays well-formed; the owning compiler
  /// must discard the object and let callers demote to the interpreter.
  bool exceeded() const { return Exceeded; }

private:
  void emit(ExprInstr::Op Op, uint32_t Slot = 0, int64_t Imm = 0);
  void emitExpr(const sym::Expr *E);
  bool matchAffineIndex(const sym::Expr *E, sym::SymbolId &S,
                        int64_t &Off) const;

  const sym::Context &Ctx;
  std::vector<ExprInstr> &Code;
  std::vector<sym::SymbolId> &ScalarSlots;
  std::vector<sym::SymbolId> &ArraySlots;
  std::unordered_map<sym::SymbolId, uint32_t> ScalarSlotFor;
  std::unordered_map<sym::SymbolId, uint32_t> ArraySlotFor;
  uint32_t Depth = 0;    ///< live stack depth of the range being compiled
  uint32_t MaxDepth = 0; ///< peak over all ranges compiled by this builder
  bool Exceeded = false; ///< a range tripped a lowering resource guard
};

/// Exact peak stack depth of code range [Begin, End), recomputed by static
/// simulation (every opcode has a fixed net stack effect). Used by debug
/// asserts to validate the compile-time bound frames are sized from.
uint32_t exprCodeMaxDepth(const ExprInstr *Code, uint32_t Begin, uint32_t End);

/// Executes expression code [Begin, End) of \p Code against bound slot
/// arrays. \p Stack must have room for the range's exact peak depth (see
/// ExprCodeBuilder::maxStackDepth / exprCodeMaxDepth). Returns nullopt on
/// an unbound scalar or out-of-bounds read.
std::optional<int64_t> runExprCode(const ExprInstr *Code, uint32_t Begin,
                                   uint32_t End, const int64_t *Scalars,
                                   const uint8_t *Bound,
                                   const sym::ArrayBinding *const *Arrays,
                                   int64_t *Stack);

/// Block-vectorized tier: evaluates code range [Begin, End) for the \p Cnt
/// (1..ExprBlockWidth) consecutive loop-variable values
/// VarBase, VarBase+1, ..., VarBase+Cnt-1 in one dispatch. Scalar slot
/// \p VarSlot reads lane values directly (its frame slot is not consulted);
/// every other slot is uniform across lanes. \p LaneStack is the
/// structure-of-arrays stack — the caller must provide
/// depth * ExprBlockWidth slots, rows of ExprBlockWidth lanes.
///
/// Returns the per-lane fail mask (bit L set = lane L hit an unbound
/// scalar or out-of-bounds read and its Out value is meaningless — the
/// scalar path would have returned nullopt at iteration VarBase+L). Failed
/// lanes carry 0 on the stack so later arithmetic stays well-defined; the
/// mask is sticky for the whole range. \p Out receives the Cnt lane
/// results.
///
/// Fast paths: an ArrayLoadOff whose index scalar is \p VarSlot reads Cnt
/// consecutive elements, so one whole-block range precheck (two compares)
/// replaces the per-lane bounds checks and the loads become a contiguous
/// copy the compiler vectorizes.
uint32_t runExprCodeBlock(const ExprInstr *Code, uint32_t Begin, uint32_t End,
                          const int64_t *Scalars, const uint8_t *Bound,
                          const sym::ArrayBinding *const *Arrays,
                          uint32_t VarSlot, int64_t VarBase, unsigned Cnt,
                          int64_t *LaneStack, int64_t *Out);

} // namespace pdag
} // namespace halo

#endif // HALO_PDAG_EXPRCODE_H
