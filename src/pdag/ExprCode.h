//===- pdag/ExprCode.h - Shared expression bytecode ------------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The slot-resolved expression bytecode shared by the two compile-once
/// runtime engines: the predicate compiler (pdag/PredCompile.h) and the
/// USR interval-run compiler (usr/USRCompile.h). Both lower sym::Expr
/// trees into the same flat stack-machine code so that evaluation never
/// touches a sym::Bindings hash table: every scalar and index-array symbol
/// is resolved to a dense frame slot once per binding, and constants are
/// folded at compile time.
///
///  - ExprCodeBuilder interns symbol slots and emits canonical expressions
///    into a caller-owned code/slot-table triple (each compiled object owns
///    its own tables; the builder is compile-time only).
///  - runExprCode executes a [Begin, End) range against bound slot arrays;
///    it returns nullopt when an unbound scalar or out-of-bounds array
///    read decides the value (the same conservative contract as
///    sym::tryEval).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PDAG_EXPRCODE_H
#define HALO_PDAG_EXPRCODE_H

#include "sym/Eval.h"
#include "sym/Expr.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace halo {
namespace pdag {

/// One expression-bytecode instruction (operates on an int64 value stack).
struct ExprInstr {
  enum class Op : uint8_t {
    Const,        ///< push Imm
    Scalar,       ///< push scalar slot Slot (fail when unbound)
    ArrayLoad,    ///< pop index, push array slot Slot at index (fail OOB)
    ArrayLoadOff, ///< push array Slot at (scalar Slot2 + Imm) — the fused
                  ///< form of the ubiquitous A(i), A(i+1) accesses
    Min,          ///< pop b, a; push min(a, b)
    Max,          ///< pop b, a; push max(a, b)
    FloorDiv,     ///< pop a; push floor(a / Imm)
    Mod,          ///< pop a; push a - Imm * floor(a / Imm)
    Mul,          ///< pop b, a; push a * b
    MulConst,     ///< top *= Imm
    AddConst,     ///< top += Imm
    MulConstAdd,  ///< pop v; top += Imm * v   (monomial accumulate)
  };
  Op Opcode;
  uint32_t Slot = 0;
  uint32_t Slot2 = 0;
  int64_t Imm = 0;
};

/// Emits canonical sym::Expr trees as expression bytecode into a
/// caller-owned code vector, interning scalar/array symbols into the
/// caller's slot tables (slot index == position in the table). One builder
/// serves one compiled object; evaluation state is bound separately.
class ExprCodeBuilder {
public:
  ExprCodeBuilder(const sym::Context &Ctx, std::vector<ExprInstr> &Code,
                  std::vector<sym::SymbolId> &ScalarSlots,
                  std::vector<sym::SymbolId> &ArraySlots)
      : Ctx(Ctx), Code(Code), ScalarSlots(ScalarSlots),
        ArraySlots(ArraySlots) {}

  /// Emits \p E as a fresh code range; returns [Begin, End).
  std::pair<uint32_t, uint32_t> compile(const sym::Expr *E);

  uint32_t scalarSlot(sym::SymbolId S);
  uint32_t arraySlot(sym::SymbolId S);

private:
  void emit(ExprInstr::Op Op, uint32_t Slot = 0, int64_t Imm = 0,
            uint32_t Slot2 = 0) {
    Code.push_back(ExprInstr{Op, Slot, Slot2, Imm});
  }
  void emitExpr(const sym::Expr *E);
  bool matchAffineIndex(const sym::Expr *E, sym::SymbolId &S,
                        int64_t &Off) const;

  const sym::Context &Ctx;
  std::vector<ExprInstr> &Code;
  std::vector<sym::SymbolId> &ScalarSlots;
  std::vector<sym::SymbolId> &ArraySlots;
  std::unordered_map<sym::SymbolId, uint32_t> ScalarSlotFor;
  std::unordered_map<sym::SymbolId, uint32_t> ArraySlotFor;
};

/// Executes expression code [Begin, End) of \p Code against bound slot
/// arrays. \p Stack must have room for the range's maximal depth (every
/// instruction pushes at most one value, so code-length + 1 always
/// suffices). Returns nullopt on an unbound scalar or out-of-bounds read.
std::optional<int64_t> runExprCode(const ExprInstr *Code, uint32_t Begin,
                                   uint32_t End, const int64_t *Scalars,
                                   const uint8_t *Bound,
                                   const sym::ArrayBinding *const *Arrays,
                                   int64_t *Stack);

} // namespace pdag
} // namespace halo

#endif // HALO_PDAG_EXPRCODE_H
