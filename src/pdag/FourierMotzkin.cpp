//===- pdag/FourierMotzkin.cpp - Symbolic bound-variable elimination ------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "pdag/FourierMotzkin.h"

#include "support/Error.h"

using namespace halo;
using namespace halo::pdag;
using sym::Expr;
using sym::SymbolId;

namespace {

/// Guards against pathological recursion (the algorithm is worst-case
/// exponential; real inputs eliminate one or two symbols).
constexpr int MaxFMDepth = 12;

class Eliminator {
public:
  Eliminator(PredContext &Ctx, const sym::RangeEnv &Env)
      : Ctx(Ctx), Sym(Ctx.symCtx()), Env(Env) {}

  /// Sufficient predicate for E >= 0.
  const Pred *reduce(const Expr *E, int Depth) {
    if (Depth > MaxFMDepth)
      return Ctx.ge0(E);

    // FIND_SYMBOL: a bounded symbol that occurs polynomially in E.
    SymbolId Var = 0;
    const sym::Range *R = nullptr;
    std::optional<sym::Context::LinearSplit> Split;
    for (SymbolId S : E->freeSymbols()) {
      const sym::Range *SR = Env.lookup(S);
      if (!SR)
        continue;
      auto SS = Sym.splitLinearIn(E, S);
      if (!SS || SS->A == Sym.intConst(0))
        continue;
      Var = S;
      R = SR;
      Split = SS;
      break;
    }
    if (!Split)
      return Ctx.ge0(E); // err case of FIND_SYMBOL: emit the leaf as-is.

    const Expr *A = Split->A;
    const Expr *B = Split->B;
    const Expr *AtLo = Sym.add(Sym.mul(A, R->Lo), B);
    const Expr *AtHi = Sym.add(Sym.mul(A, R->Hi), B);

    // If the coefficient's sign is known, only one branch survives.
    if (auto AC = Sym.constValue(A))
      return reduce(*AC >= 0 ? AtLo : AtHi, Depth + 1);

    // (A >= 0 and A*Lo + B >= 0) or (A < 0 and A*Hi + B >= 0), with the
    // sign conditions themselves reduced (they have smaller exponent).
    const Pred *Pos =
        Ctx.and2(reduce(A, Depth + 1), reduce(AtLo, Depth + 1));
    const Pred *Neg = Ctx.and2(
        reduce(Sym.addConst(Sym.neg(A), -1), Depth + 1), // -A - 1 >= 0.
        reduce(AtHi, Depth + 1));
    return Ctx.or2(Pos, Neg);
  }

private:
  PredContext &Ctx;
  sym::Context &Sym;
  const sym::RangeEnv &Env;
};

} // namespace

const Pred *pdag::reduceGE0(PredContext &Ctx, const Expr *E,
                            const sym::RangeEnv &Env) {
  if (Env.empty())
    return Ctx.ge0(E);
  Eliminator El(Ctx, Env);
  return El.reduce(E, 0);
}

const Pred *pdag::reduceGT0(PredContext &Ctx, const Expr *E,
                            const sym::RangeEnv &Env) {
  return reduceGE0(Ctx, Ctx.symCtx().addConst(E, -1), Env);
}

const Pred *pdag::reducePred(PredContext &Ctx, const Pred *P,
                             const sym::RangeEnv &Env) {
  if (Env.empty())
    return P;
  auto TouchesEnv = [&Env](const Pred *Q) {
    for (SymbolId S : Q->freeSymbols())
      if (Env.lookup(S))
        return true;
    return false;
  };
  if (!TouchesEnv(P))
    return P;
  switch (P->getKind()) {
  case PredKind::True:
  case PredKind::False:
    return P;
  case PredKind::Cmp: {
    const auto *C = cast<CmpPred>(P);
    if (C->getRel() == CmpRel::GE0) {
      const Pred *R = reduceGE0(Ctx, C->getExpr(), Env);
      // Residual occurrences (opaque atoms): strengthen to false — the
      // caller ORs the reduction with the exact loop node, so nothing is
      // lost overall.
      return TouchesEnv(R) ? Ctx.getFalse() : R;
    }
    // Equalities/disequalities over the eliminated variable have no
    // sufficient variable-free form; strengthen to false.
    return Ctx.getFalse();
  }
  case PredKind::Divides: // Congruences are not FM-reducible.
    return Ctx.getFalse();
  case PredKind::And:
  case PredKind::Or: {
    const auto *N = cast<NaryPred>(P);
    std::vector<const Pred *> Cs;
    Cs.reserve(N->getChildren().size());
    for (const Pred *C : N->getChildren())
      Cs.push_back(reducePred(Ctx, C, Env));
    return N->isAnd() ? Ctx.andN(std::move(Cs)) : Ctx.orN(std::move(Cs));
  }
  case PredKind::LoopAll:
  case PredKind::CallSite:
    return Ctx.getFalse(); // Bound variable escapes into a nested scope.
  }
  halo_unreachable("covered switch");
}
