//===- pdag/FourierMotzkin.cpp - Symbolic bound-variable elimination ------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "pdag/FourierMotzkin.h"

#include "support/Error.h"

#include <unordered_map>

using namespace halo;
using namespace halo::pdag;
using sym::Expr;
using sym::SymbolId;

namespace {

/// Guards against pathological recursion (the algorithm is worst-case
/// exponential; real inputs eliminate one or two symbols).
constexpr int MaxFMDepth = 12;

/// Work budget for one top-level reduceGE0/reducePred invocation. Every
/// reduce() call spends one unit; when the budget runs out the eliminator
/// emits leaves as-is, which reducePred then strengthens to `false` — a
/// sound degradation (the factorizer ORs the reduction with the exact
/// LoopAll node, so precision is lost but never soundness). Found by the
/// loop-nest fuzzer: subscript-of-subscript leaves keep every coefficient
/// sign opaque, so the 4-way branch actually hits its exponential
/// worst case.
constexpr uint64_t MaxFMSteps = 1 << 14;

class Eliminator {
public:
  Eliminator(PredContext &Ctx, const sym::RangeEnv &Env)
      : Ctx(Ctx), Sym(Ctx.symCtx()), Env(Env) {}

  /// Sufficient predicate for E >= 0.
  const Pred *reduce(const Expr *E, int Depth) {
    if (Depth > MaxFMDepth || ++Steps > MaxFMSteps)
      return Ctx.ge0(E);

    // Expressions are interned, so identical subproblems recur whenever
    // the split coefficients share structure; any memoized result is a
    // sufficient predicate for E >= 0 and can be reused regardless of the
    // depth it was first computed at.
    auto Hit = Memo.find(E);
    if (Hit != Memo.end())
      return Hit->second;

    // FIND_SYMBOL: a bounded symbol that occurs polynomially in E.
    const sym::Range *R = nullptr;
    std::optional<sym::Context::LinearSplit> Split;
    for (SymbolId S : E->freeSymbols()) {
      const sym::Range *SR = Env.lookup(S);
      if (!SR)
        continue;
      auto SS = Sym.splitLinearIn(E, S);
      if (!SS || SS->A == Sym.intConst(0))
        continue;
      R = SR;
      Split = SS;
      break;
    }
    if (!Split)
      return Ctx.ge0(E); // err case of FIND_SYMBOL: emit the leaf as-is.

    const Expr *A = Split->A;
    const Expr *B = Split->B;
    const Expr *AtLo = Sym.add(Sym.mul(A, R->Lo), B);
    const Expr *AtHi = Sym.add(Sym.mul(A, R->Hi), B);

    const Pred *Res;
    // If the coefficient's sign is known, only one branch survives.
    if (auto AC = Sym.constValue(A)) {
      Res = reduce(*AC >= 0 ? AtLo : AtHi, Depth + 1);
    } else {
      // (A >= 0 and A*Lo + B >= 0) or (A < 0 and A*Hi + B >= 0), with the
      // sign conditions themselves reduced (they have smaller exponent).
      const Pred *Pos =
          Ctx.and2(reduce(A, Depth + 1), reduce(AtLo, Depth + 1));
      const Pred *Neg = Ctx.and2(
          reduce(Sym.addConst(Sym.neg(A), -1), Depth + 1), // -A - 1 >= 0.
          reduce(AtHi, Depth + 1));
      Res = Ctx.or2(Pos, Neg);
    }
    Memo.emplace(E, Res);
    return Res;
  }

private:
  PredContext &Ctx;
  sym::Context &Sym;
  const sym::RangeEnv &Env;
  uint64_t Steps = 0;
  std::unordered_map<const Expr *, const Pred *> Memo;
};

} // namespace

const Pred *pdag::reduceGE0(PredContext &Ctx, const Expr *E,
                            const sym::RangeEnv &Env) {
  if (Env.empty())
    return Ctx.ge0(E);
  Eliminator El(Ctx, Env);
  return El.reduce(E, 0);
}

const Pred *pdag::reduceGT0(PredContext &Ctx, const Expr *E,
                            const sym::RangeEnv &Env) {
  return reduceGE0(Ctx, Ctx.symCtx().addConst(E, -1), Env);
}

namespace {

/// One reducePred invocation: predicates are interned DAGs with heavy
/// sharing (the factorizer composes cascades out of common subterms), so
/// an unmemoized tree walk re-expands shared nodes exponentially — another
/// fuzzer-found blowup. Memo entries are valid for the whole walk because
/// Env is fixed.
class PredReducer {
public:
  PredReducer(PredContext &Ctx, const sym::RangeEnv &Env)
      : Ctx(Ctx), Env(Env), El(Ctx, Env) {}

  bool touchesEnv(const Pred *Q) const {
    for (SymbolId S : Q->freeSymbols())
      if (Env.lookup(S))
        return true;
    return false;
  }

  const Pred *reduce(const Pred *P) {
    if (!touchesEnv(P))
      return P;
    auto Hit = Memo.find(P);
    if (Hit != Memo.end())
      return Hit->second;
    const Pred *Res = reduceUncached(P);
    Memo.emplace(P, Res);
    return Res;
  }

private:
  const Pred *reduceUncached(const Pred *P) {
    switch (P->getKind()) {
    case PredKind::True:
    case PredKind::False:
      return P;
    case PredKind::Cmp: {
      const auto *C = cast<CmpPred>(P);
      if (C->getRel() == CmpRel::GE0) {
        // One shared eliminator: its memo and step budget span every leaf
        // of this walk, so pathological leaves cannot multiply.
        const Pred *R = El.reduce(C->getExpr(), 0);
        // Residual occurrences (opaque atoms): strengthen to false — the
        // caller ORs the reduction with the exact loop node, so nothing is
        // lost overall.
        return touchesEnv(R) ? Ctx.getFalse() : R;
      }
      // Equalities/disequalities over the eliminated variable have no
      // sufficient variable-free form; strengthen to false.
      return Ctx.getFalse();
    }
    case PredKind::Divides: // Congruences are not FM-reducible.
      return Ctx.getFalse();
    case PredKind::And:
    case PredKind::Or: {
      const auto *N = cast<NaryPred>(P);
      std::vector<const Pred *> Cs;
      Cs.reserve(N->getChildren().size());
      for (const Pred *C : N->getChildren())
        Cs.push_back(reduce(C));
      return N->isAnd() ? Ctx.andN(std::move(Cs)) : Ctx.orN(std::move(Cs));
    }
    case PredKind::LoopAll:
    case PredKind::CallSite:
      return Ctx.getFalse(); // Bound variable escapes into a nested scope.
    }
    halo_unreachable("covered switch");
  }

  PredContext &Ctx;
  const sym::RangeEnv &Env;
  Eliminator El;
  std::unordered_map<const Pred *, const Pred *> Memo;
};

} // namespace

const Pred *pdag::reducePred(PredContext &Ctx, const Pred *P,
                             const sym::RangeEnv &Env) {
  if (Env.empty())
    return P;
  PredReducer R(Ctx, Env);
  return R.reduce(P);
}
