//===- pdag/FourierMotzkin.h - Symbolic bound-variable elimination -*-C++-*-=//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic Fourier-Motzkin-like eliminator of Fig. 6(b): given an
/// integer expression `expr` and a range environment binding loop indexes,
/// produce a *sufficient* predicate for `expr >= 0` (resp. `> 0`) in which
/// the bounded symbols have been eliminated:
///
///   expr = a*i + b, i in [L, U], i not in b:
///     (a >= 0 and a*L + b >= 0)  or  (a < 0 and a*U + b >= 0)
///
/// where the sign conditions on `a` recurse (they may themselves mention
/// bounded symbols of smaller exponent), guaranteeing termination at
/// worst-case exponential cost — the paper notes this is only exponential in
/// the number of *eliminated* symbols, typically one (the outermost loop
/// index).
///
/// The canonical use (loop CORREC_DO711 of bdna, Sec. 3.2): eliminating i
/// from `IX(1)+1-IX(2)-i > 0` with i in [1, NOP] yields
/// `IX(2)+NOP <= IX(1)`.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PDAG_FOURIERMOTZKIN_H
#define HALO_PDAG_FOURIERMOTZKIN_H

#include "pdag/Pred.h"
#include "sym/Range.h"

namespace halo {
namespace pdag {

/// Produces a sufficient predicate for `E >= 0` with the symbols bound in
/// \p Env eliminated where possible. Symbols that occur inside opaque atoms
/// (array subscripts) survive in the result; callers test
/// `result->dependsOn(var)` and wrap in a LoopAll when elimination failed.
const Pred *reduceGE0(PredContext &Ctx, const sym::Expr *E,
                      const sym::RangeEnv &Env);

/// Sufficient predicate for `E > 0` (the paper's REDUCE_GT_0).
const Pred *reduceGT0(PredContext &Ctx, const sym::Expr *E,
                      const sym::RangeEnv &Env);

/// Applies the eliminator to every comparison leaf of \p P, strengthening
/// the predicate so that env-bound symbols disappear where possible.
/// Leaves that cannot be reduced are kept unchanged (the caller decides
/// whether to wrap them in a loop conjunction).
const Pred *reducePred(PredContext &Ctx, const Pred *P,
                       const sym::RangeEnv &Env);

} // namespace pdag
} // namespace halo

#endif // HALO_PDAG_FOURIERMOTZKIN_H
