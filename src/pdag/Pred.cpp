//===- pdag/Pred.cpp - The PDAG predicate language -------------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "pdag/Pred.h"

#include "support/Error.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>
#include <unordered_set>

using namespace halo;
using namespace halo::pdag;
using sym::Expr;
using sym::SymbolId;

/// Maximum constant trip count that loopAll() unrolls into a plain
/// conjunction; beyond this an irreducible LoopAll node is kept.
static constexpr int64_t UnrollLimit = 16;

//===----------------------------------------------------------------------===//
// Pred queries
//===----------------------------------------------------------------------===//

bool Pred::dependsOn(SymbolId S) const {
  return std::binary_search(FreeSyms.begin(), FreeSyms.end(), S);
}

bool Pred::isInvariantAtDepth(int LoopDepth, const sym::Context &Ctx) const {
  for (SymbolId S : FreeSyms)
    if (Ctx.symbolInfo(S).DefLevel >= LoopDepth)
      return false;
  return true;
}

std::string Pred::toString(const sym::Context &Ctx) const {
  std::ostringstream OS;
  print(OS, Ctx);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Interning machinery
//===----------------------------------------------------------------------===//

static bool predsEqual(const Pred *A, const Pred *B) {
  if (A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case PredKind::True:
  case PredKind::False:
    return true;
  case PredKind::Cmp: {
    const auto *CA = cast<CmpPred>(A), *CB = cast<CmpPred>(B);
    return CA->getExpr() == CB->getExpr() && CA->getRel() == CB->getRel();
  }
  case PredKind::Divides: {
    const auto *DA = cast<DividesPred>(A), *DB = cast<DividesPred>(B);
    return DA->getDivisor() == DB->getDivisor() &&
           DA->getValue() == DB->getValue() &&
           DA->isNegated() == DB->isNegated();
  }
  case PredKind::And:
  case PredKind::Or:
    return cast<NaryPred>(A)->getChildren() ==
           cast<NaryPred>(B)->getChildren();
  case PredKind::LoopAll: {
    const auto *LA = cast<LoopAllPred>(A), *LB = cast<LoopAllPred>(B);
    return LA->getVar() == LB->getVar() && LA->getLo() == LB->getLo() &&
           LA->getHi() == LB->getHi() && LA->getBody() == LB->getBody();
  }
  case PredKind::CallSite: {
    const auto *SA = cast<CallSitePred>(A), *SB = cast<CallSitePred>(B);
    return SA->getCallee() == SB->getCallee() && SA->getBody() == SB->getBody();
  }
  }
  halo_unreachable("covered switch");
}

static size_t hashPred(const Pred *P) {
  size_t H = static_cast<size_t>(P->getKind()) * 0x9e3779b9u + 17;
  switch (P->getKind()) {
  case PredKind::True:
  case PredKind::False:
    break;
  case PredKind::Cmp: {
    const auto *C = cast<CmpPred>(P);
    hashCombine(H, C->getExpr());
    hashCombine(H, static_cast<size_t>(C->getRel()));
    break;
  }
  case PredKind::Divides: {
    const auto *D = cast<DividesPred>(P);
    hashCombine(H, D->getDivisor());
    hashCombine(H, D->getValue());
    hashCombine(H, static_cast<size_t>(D->isNegated()));
    break;
  }
  case PredKind::And:
  case PredKind::Or:
    for (const Pred *C : cast<NaryPred>(P)->getChildren())
      hashCombine(H, C);
    break;
  case PredKind::LoopAll: {
    const auto *L = cast<LoopAllPred>(P);
    hashCombine(H, static_cast<size_t>(L->getVar()));
    hashCombine(H, L->getLo());
    hashCombine(H, L->getHi());
    hashCombine(H, L->getBody());
    break;
  }
  case PredKind::CallSite: {
    const auto *S = cast<CallSitePred>(P);
    hashCombine(H, std::hash<std::string>{}(S->getCallee()));
    hashCombine(H, S->getBody());
    break;
  }
  }
  return H;
}

const Pred *PredContext::intern(std::unique_ptr<Pred> N, size_t Hash) {
  auto Range = InternTable.equal_range(Hash);
  for (auto It = Range.first; It != Range.second; ++It)
    if (predsEqual(It->second, N.get()))
      return It->second;
  N->Id = static_cast<uint32_t>(Nodes.size());
  const Pred *Raw = N.get();
  Nodes.push_back(std::move(N));
  InternTable.emplace(Hash, Raw);
  return Raw;
}

namespace {
/// Concrete type for the True/False singletons (Pred's constructor is
/// protected).
class BoolPred : public Pred {
public:
  BoolPred(PredKind K) : Pred(K, {}, 0) {}
};
} // namespace

PredContext::PredContext(sym::Context &SymCtx) : SymCtx(SymCtx) {
  {
    std::unique_ptr<Pred> T(new BoolPred(PredKind::True));
    size_t H = hashPred(T.get());
    TruePred = intern(std::move(T), H);
  }
  {
    std::unique_ptr<Pred> F(new BoolPred(PredKind::False));
    size_t H = hashPred(F.get());
    FalsePred = intern(std::move(F), H);
  }
}

PredContext::~PredContext() = default;

static std::vector<SymbolId> unionSyms(std::vector<SymbolId> A,
                                       const std::vector<SymbolId> &B) {
  std::vector<SymbolId> Out;
  Out.reserve(A.size() + B.size());
  std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                 std::back_inserter(Out));
  return Out;
}

//===----------------------------------------------------------------------===//
// Leaves
//===----------------------------------------------------------------------===//

const Pred *PredContext::makeCmp(const Expr *E, CmpRel Rel) {
  std::unique_ptr<Pred> N(
      new CmpPred(E, Rel, std::vector<SymbolId>(E->freeSymbols())));
  size_t H = hashPred(N.get());
  return intern(std::move(N), H);
}

static int64_t floorDivInt(int64_t A, int64_t D) {
  int64_t Q = A / D;
  if ((A % D) != 0 && A < 0)
    --Q;
  return Q;
}

/// Monotone-array fold: `A(x) - A(y) + c >= 0` holds whenever A is a
/// declared non-decreasing index array (the CIV prefix arrays of Sec. 3.3),
/// x - y folds to a non-negative constant and c >= 0.
static bool monotoneArrayGE0(sym::Context &Ctx, const sym::LinearForm &LF) {
  if (LF.Constant < 0 || LF.Terms.size() != 2)
    return false;
  const sym::Monomial &A = LF.Terms[0], &B = LF.Terms[1];
  const sym::Monomial *Pos = A.Coeff == 1 ? &A : (B.Coeff == 1 ? &B : nullptr);
  const sym::Monomial *Neg =
      A.Coeff == -1 ? &A : (B.Coeff == -1 ? &B : nullptr);
  if (!Pos || !Neg || Pos == Neg)
    return false;
  const auto *RP = dyn_cast<sym::ArrayRefExpr>(Pos->Prod);
  const auto *RN = dyn_cast<sym::ArrayRefExpr>(Neg->Prod);
  if (!RP || !RN || RP->getArray() != RN->getArray())
    return false;
  if (!Ctx.symbolInfo(RP->getArray()).MonotoneArray)
    return false;
  auto Diff = Ctx.constValue(Ctx.sub(RP->getIndex(), RN->getIndex()));
  return Diff && *Diff >= 0;
}

const Pred *PredContext::ge0(const Expr *E) {
  if (auto C = SymCtx.constValue(E))
    return boolConst(*C >= 0);
  if (monotoneArrayGE0(SymCtx, SymCtx.toLinear(E)))
    return getTrue();
  // Integer tightening: g*f + c >= 0  <=>  f + floor(c/g) >= 0.
  sym::LinearForm LF = SymCtx.toLinear(E);
  int64_t G = 0;
  for (const sym::Monomial &M : LF.Terms)
    G = std::gcd(G, M.Coeff);
  if (G > 1) {
    sym::LinearForm Out;
    for (const sym::Monomial &M : LF.Terms)
      Out.Terms.push_back(sym::Monomial{M.Prod, M.Coeff / G});
    Out.Constant = floorDivInt(LF.Constant, G);
    E = SymCtx.fromLinear(std::move(Out));
    if (auto C = SymCtx.constValue(E))
      return boolConst(*C >= 0);
  }
  return makeCmp(E, CmpRel::GE0);
}

/// Canonicalizes E for an equality/disequality test against zero.
/// Returns nullopt when the congruence is infeasible (E != 0 always).
static std::optional<const Expr *> canonEqExpr(sym::Context &Ctx,
                                               const Expr *E) {
  sym::LinearForm LF = Ctx.toLinear(E);
  int64_t G = 0;
  for (const sym::Monomial &M : LF.Terms)
    G = std::gcd(G, M.Coeff);
  if (G > 1) {
    if (LF.Constant % G != 0)
      return std::nullopt; // g*f + c == 0 infeasible when g does not divide c.
    for (sym::Monomial &M : LF.Terms)
      M.Coeff /= G;
    LF.Constant /= G;
  }
  // Sign normalization: make the leading coefficient (or constant) positive.
  int64_t Lead = LF.Terms.empty() ? LF.Constant : LF.Terms.front().Coeff;
  if (Lead < 0) {
    for (sym::Monomial &M : LF.Terms)
      M.Coeff = -M.Coeff;
    LF.Constant = -LF.Constant;
  }
  return Ctx.fromLinear(std::move(LF));
}

const Pred *PredContext::eq0(const Expr *E) {
  if (auto C = SymCtx.constValue(E))
    return boolConst(*C == 0);
  auto Canon = canonEqExpr(SymCtx, E);
  if (!Canon)
    return getFalse();
  if (auto C = SymCtx.constValue(*Canon))
    return boolConst(*C == 0);
  return makeCmp(*Canon, CmpRel::EQ0);
}

const Pred *PredContext::ne0(const Expr *E) {
  if (auto C = SymCtx.constValue(E))
    return boolConst(*C != 0);
  auto Canon = canonEqExpr(SymCtx, E);
  if (!Canon)
    return getTrue();
  if (auto C = SymCtx.constValue(*Canon))
    return boolConst(*C != 0);
  return makeCmp(*Canon, CmpRel::NE0);
}

const Pred *PredContext::divides(const Expr *D, const Expr *E, bool Neg) {
  if (auto DC = SymCtx.constValue(D)) {
    int64_t Div = *DC < 0 ? -*DC : *DC;
    if (Div == 0) // 0 | e  <=>  e == 0.
      return Neg ? ne0(E) : eq0(E);
    if (Div == 1)
      return boolConst(!Neg);
    if (auto EC = SymCtx.constValue(E))
      return boolConst((*EC % Div == 0) != Neg);
    if (SymCtx.definitelyDivisibleBy(E, Div))
      return boolConst(!Neg);
    // Canonicalize the value modulo the divisor.
    sym::LinearForm LF = SymCtx.toLinear(E);
    for (sym::Monomial &M : LF.Terms)
      M.Coeff = ((M.Coeff % Div) + Div) % Div;
    LF.Constant = ((LF.Constant % Div) + Div) % Div;
    E = SymCtx.fromLinear(std::move(LF));
    if (auto EC = SymCtx.constValue(E))
      return boolConst((*EC % Div == 0) != Neg);
    D = SymCtx.intConst(Div);
  } else if (D == E) {
    return boolConst(!Neg); // d | d.
  } else if (auto EC = SymCtx.constValue(E); EC && *EC == 0) {
    return boolConst(!Neg); // d | 0.
  }
  std::vector<SymbolId> Free =
      unionSyms(std::vector<SymbolId>(D->freeSymbols()), E->freeSymbols());
  std::unique_ptr<Pred> N(new DividesPred(D, E, Neg, std::move(Free)));
  size_t H = hashPred(N.get());
  return intern(std::move(N), H);
}

//===----------------------------------------------------------------------===//
// Comparison sugar
//===----------------------------------------------------------------------===//

const Pred *PredContext::le(const Expr *A, const Expr *B) {
  return ge0(SymCtx.sub(B, A));
}
const Pred *PredContext::lt(const Expr *A, const Expr *B) {
  return ge0(SymCtx.addConst(SymCtx.sub(B, A), -1));
}
const Pred *PredContext::ge(const Expr *A, const Expr *B) { return le(B, A); }
const Pred *PredContext::gt(const Expr *A, const Expr *B) { return lt(B, A); }
const Pred *PredContext::eq(const Expr *A, const Expr *B) {
  return eq0(SymCtx.sub(A, B));
}
const Pred *PredContext::ne(const Expr *A, const Expr *B) {
  return ne0(SymCtx.sub(A, B));
}

//===----------------------------------------------------------------------===//
// Connectives
//===----------------------------------------------------------------------===//

const Pred *PredContext::makeNary(PredKind K, std::vector<const Pred *> Cs) {
  const bool IsAnd = K == PredKind::And;
  const Pred *Absorb = IsAnd ? getFalse() : getTrue();
  const Pred *Unit = IsAnd ? getTrue() : getFalse();

  // Flatten same-kind children and fold constants.
  std::vector<const Pred *> Flat;
  Flat.reserve(Cs.size());
  for (const Pred *C : Cs) {
    if (C == Absorb)
      return Absorb;
    if (C == Unit)
      continue;
    if (C->getKind() == K) {
      const auto &Sub = cast<NaryPred>(C)->getChildren();
      Flat.insert(Flat.end(), Sub.begin(), Sub.end());
    } else {
      Flat.push_back(C);
    }
  }
  std::sort(Flat.begin(), Flat.end(), [](const Pred *A, const Pred *B) {
    return A->getId() < B->getId();
  });
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());

  if (Flat.empty())
    return Unit;
  if (Flat.size() == 1)
    return Flat[0];

  // Complementary literals: X and not(X) fold to the absorbing element.
  // Only leaves are checked — negating interior nodes is linear in their
  // size and would make n-ary construction quadratic on large programs.
  {
    std::unordered_set<const Pred *> Set(Flat.begin(), Flat.end());
    for (const Pred *C : Flat) {
      if (C->getKind() != PredKind::Cmp && C->getKind() != PredKind::Divides)
        continue;
      const Pred *NC = tryNot(C);
      if (NC && Set.count(NC))
        return Absorb;
    }
    // Absorption: in an And, an Or-child containing a sibling is redundant
    // (A and (A or B) == A and ...); dually for Or.
    const PredKind DualK = IsAnd ? PredKind::Or : PredKind::And;
    std::vector<const Pred *> Kept;
    Kept.reserve(Flat.size());
    for (const Pred *C : Flat) {
      bool Subsumed = false;
      if (C->getKind() == DualK)
        for (const Pred *Sub : cast<NaryPred>(C)->getChildren())
          if (Set.count(Sub)) {
            Subsumed = true;
            break;
          }
      if (!Subsumed)
        Kept.push_back(C);
    }
    Flat = std::move(Kept);
    if (Flat.size() == 1)
      return Flat[0];
  }

  std::vector<SymbolId> Free;
  int Depth = 0;
  for (const Pred *C : Flat) {
    Free = unionSyms(std::move(Free), C->freeSymbols());
    Depth = std::max(Depth, C->loopDepth());
  }
  std::unique_ptr<Pred> N(
      new NaryPred(K, std::move(Flat), std::move(Free), Depth));
  size_t H = hashPred(N.get());
  return intern(std::move(N), H);
}

const Pred *PredContext::and2(const Pred *A, const Pred *B) {
  return makeNary(PredKind::And, {A, B});
}
const Pred *PredContext::or2(const Pred *A, const Pred *B) {
  return makeNary(PredKind::Or, {A, B});
}
const Pred *PredContext::andN(std::vector<const Pred *> Cs) {
  return makeNary(PredKind::And, std::move(Cs));
}
const Pred *PredContext::orN(std::vector<const Pred *> Cs) {
  return makeNary(PredKind::Or, std::move(Cs));
}

const Pred *PredContext::loopAll(SymbolId Var, const Expr *Lo, const Expr *Hi,
                                 const Pred *Body) {
  if (Body->isTrue())
    return getTrue();
  // An empty range [Lo, Hi] makes the conjunction vacuously true.
  const Pred *EmptyRange =
      ge0(SymCtx.addConst(SymCtx.sub(Lo, Hi), -1)); // Lo > Hi.
  if (!Body->dependsOn(Var))
    return or2(EmptyRange, Body);

  auto LoC = SymCtx.constValue(Lo);
  auto HiC = SymCtx.constValue(Hi);
  if (LoC && HiC) {
    if (*LoC > *HiC)
      return getTrue();
    if (*HiC - *LoC < UnrollLimit) {
      std::vector<const Pred *> Parts;
      for (int64_t I = *LoC; I <= *HiC; ++I) {
        std::map<SymbolId, const Expr *> M{{Var, SymCtx.intConst(I)}};
        Parts.push_back(substitute(Body, M));
      }
      return andN(std::move(Parts));
    }
  }

  std::vector<SymbolId> Free(Body->freeSymbols());
  Free.erase(std::remove(Free.begin(), Free.end(), Var), Free.end());
  Free = unionSyms(std::move(Free), Lo->freeSymbols());
  Free = unionSyms(std::move(Free), Hi->freeSymbols());
  std::unique_ptr<Pred> N(new LoopAllPred(Var, Lo, Hi, Body, std::move(Free),
                                          Body->loopDepth() + 1));
  size_t H = hashPred(N.get());
  return intern(std::move(N), H);
}

const Pred *PredContext::callSite(const std::string &Callee,
                                  const Pred *Body) {
  if (Body->isTrue() || Body->isFalse())
    return Body;
  std::unique_ptr<Pred> N(
      new CallSitePred(Callee, Body,
                       std::vector<SymbolId>(Body->freeSymbols()),
                       Body->loopDepth()));
  size_t H = hashPred(N.get());
  return intern(std::move(N), H);
}

//===----------------------------------------------------------------------===//
// Negation
//===----------------------------------------------------------------------===//

const Pred *PredContext::tryNot(const Pred *P) {
  switch (P->getKind()) {
  case PredKind::True:
    return getFalse();
  case PredKind::False:
    return getTrue();
  case PredKind::Cmp: {
    const auto *C = cast<CmpPred>(P);
    switch (C->getRel()) {
    case CmpRel::GE0: // not(e >= 0)  <=>  -e - 1 >= 0.
      return ge0(SymCtx.addConst(SymCtx.neg(C->getExpr()), -1));
    case CmpRel::EQ0:
      return ne0(C->getExpr());
    case CmpRel::NE0:
      return eq0(C->getExpr());
    }
    halo_unreachable("covered switch");
  }
  case PredKind::Divides: {
    const auto *D = cast<DividesPred>(P);
    return divides(D->getDivisor(), D->getValue(), !D->isNegated());
  }
  case PredKind::And:
  case PredKind::Or: {
    const auto *N = cast<NaryPred>(P);
    std::vector<const Pred *> Negs;
    Negs.reserve(N->getChildren().size());
    for (const Pred *C : N->getChildren()) {
      const Pred *NC = tryNot(C);
      if (!NC)
        return nullptr;
      Negs.push_back(NC);
    }
    return N->isAnd() ? orN(std::move(Negs)) : andN(std::move(Negs));
  }
  case PredKind::LoopAll:
  case PredKind::CallSite:
    return nullptr; // No cheap complement.
  }
  halo_unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

const Pred *
PredContext::substitute(const Pred *P,
                        const std::map<SymbolId, const Expr *> &M) {
  if (M.empty())
    return P;
  bool Touches = false;
  for (const auto &KV : M)
    if (P->dependsOn(KV.first)) {
      Touches = true;
      break;
    }
  if (!Touches)
    return P;

  switch (P->getKind()) {
  case PredKind::True:
  case PredKind::False:
    return P;
  case PredKind::Cmp: {
    const auto *C = cast<CmpPred>(P);
    const Expr *E = SymCtx.substitute(C->getExpr(), M);
    switch (C->getRel()) {
    case CmpRel::GE0:
      return ge0(E);
    case CmpRel::EQ0:
      return eq0(E);
    case CmpRel::NE0:
      return ne0(E);
    }
    halo_unreachable("covered switch");
  }
  case PredKind::Divides: {
    const auto *D = cast<DividesPred>(P);
    return divides(SymCtx.substitute(D->getDivisor(), M),
                   SymCtx.substitute(D->getValue(), M), D->isNegated());
  }
  case PredKind::And:
  case PredKind::Or: {
    const auto *N = cast<NaryPred>(P);
    std::vector<const Pred *> Cs;
    Cs.reserve(N->getChildren().size());
    for (const Pred *C : N->getChildren())
      Cs.push_back(substitute(C, M));
    return N->isAnd() ? andN(std::move(Cs)) : orN(std::move(Cs));
  }
  case PredKind::LoopAll: {
    const auto *L = cast<LoopAllPred>(P);
    const Expr *Lo = SymCtx.substitute(L->getLo(), M);
    const Expr *Hi = SymCtx.substitute(L->getHi(), M);
    // The bound variable shadows any outer mapping of the same symbol.
    std::map<SymbolId, const Expr *> Inner(M);
    Inner.erase(L->getVar());
    // Avoid capture: if a replacement mentions the bound variable, rename it.
    SymbolId Var = L->getVar();
    const Pred *Body = L->getBody();
    bool Captures = false;
    for (const auto &KV : Inner)
      if (KV.second->dependsOn(Var) && Body->dependsOn(KV.first)) {
        Captures = true;
        break;
      }
    if (Captures) {
      SymbolId Fresh = SymCtx.freshSymbol(SymCtx.symbolInfo(Var).Name,
                                          SymCtx.symbolInfo(Var).DefLevel);
      std::map<SymbolId, const Expr *> Rename{{Var, SymCtx.symRef(Fresh)}};
      Body = substitute(Body, Rename);
      Var = Fresh;
    }
    return loopAll(Var, Lo, Hi, Inner.empty() ? Body : substitute(Body, Inner));
  }
  case PredKind::CallSite: {
    const auto *S = cast<CallSitePred>(P);
    return callSite(S->getCallee(), substitute(S->getBody(), M));
  }
  }
  halo_unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

void Pred::print(std::ostream &OS, const sym::Context &Ctx) const {
  switch (Kind) {
  case PredKind::True:
    OS << "true";
    return;
  case PredKind::False:
    OS << "false";
    return;
  case PredKind::Cmp: {
    const auto *C = cast<CmpPred>(this);
    C->getExpr()->print(OS, Ctx);
    switch (C->getRel()) {
    case CmpRel::GE0:
      OS << " >= 0";
      return;
    case CmpRel::EQ0:
      OS << " == 0";
      return;
    case CmpRel::NE0:
      OS << " != 0";
      return;
    }
    halo_unreachable("covered switch");
  }
  case PredKind::Divides: {
    const auto *D = cast<DividesPred>(this);
    if (D->isNegated())
      OS << "!(";
    D->getDivisor()->print(OS, Ctx);
    OS << " | ";
    D->getValue()->print(OS, Ctx);
    if (D->isNegated())
      OS << ")";
    return;
  }
  case PredKind::And:
  case PredKind::Or: {
    const auto *N = cast<NaryPred>(this);
    OS << "(";
    bool First = true;
    for (const Pred *C : N->getChildren()) {
      if (!First)
        OS << (N->isAnd() ? " and " : " or ");
      First = false;
      C->print(OS, Ctx);
    }
    OS << ")";
    return;
  }
  case PredKind::LoopAll: {
    const auto *L = cast<LoopAllPred>(this);
    OS << "ALL(" << Ctx.symbolInfo(L->getVar()).Name << "=";
    L->getLo()->print(OS, Ctx);
    OS << "..";
    L->getHi()->print(OS, Ctx);
    OS << ": ";
    L->getBody()->print(OS, Ctx);
    OS << ")";
    return;
  }
  case PredKind::CallSite: {
    const auto *S = cast<CallSitePred>(this);
    OS << "callsite<" << S->getCallee() << ">(";
    S->getBody()->print(OS, Ctx);
    OS << ")";
    return;
  }
  }
  halo_unreachable("covered switch");
}
