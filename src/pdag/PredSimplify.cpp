//===- pdag/PredSimplify.cpp - Predicate simplification & cascade ---------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "pdag/PredSimplify.h"

#include "support/Error.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace halo;
using namespace halo::pdag;

namespace {

class Simplifier {
public:
  explicit Simplifier(PredContext &Ctx) : Ctx(Ctx) {}

  const Pred *visit(const Pred *P) {
    auto It = Memo.find(P);
    if (It != Memo.end())
      return It->second;
    const Pred *R = rewrite(P);
    // Local fixpoint: rewriting can expose further opportunities.
    for (int I = 0; I < 4 && R != P; ++I) {
      const Pred *Next = rewrite(R);
      if (Next == R)
        break;
      R = Next;
    }
    Memo.emplace(P, R);
    return R;
  }

private:
  const Pred *rewrite(const Pred *P) {
    switch (P->getKind()) {
    case PredKind::True:
    case PredKind::False:
    case PredKind::Cmp:
    case PredKind::Divides:
      return P;
    case PredKind::And:
    case PredKind::Or:
      return rewriteNary(cast<NaryPred>(P));
    case PredKind::LoopAll:
      return rewriteLoop(cast<LoopAllPred>(P));
    case PredKind::CallSite: {
      const auto *S = cast<CallSitePred>(P);
      return Ctx.callSite(S->getCallee(), visit(S->getBody()));
    }
    }
    halo_unreachable("covered switch");
  }

  /// Common-factor extraction (an equivalence, by distributivity):
  ///   And(Or(I u R1), ..., Or(I u Rn)) == Or(I) or And(Or(R1)...Or(Rn))
  /// and dually for Or of Ands.
  const Pred *rewriteNary(const NaryPred *N) {
    std::vector<const Pred *> Cs;
    Cs.reserve(N->getChildren().size());
    for (const Pred *C : N->getChildren())
      Cs.push_back(visit(C));
    const bool IsAnd = N->isAnd();
    const Pred *Rebuilt = IsAnd ? Ctx.andN(Cs) : Ctx.orN(Cs);
    const auto *RN = dyn_cast<NaryPred>(Rebuilt);
    if (!RN || RN->isAnd() != IsAnd)
      return Rebuilt;

    const PredKind DualK = IsAnd ? PredKind::Or : PredKind::And;
    // Factor only when every child is a dual-kind node; otherwise a bare
    // child C would force the common set to {C} trivially.
    auto DualChildren = [&](const Pred *C) -> std::vector<const Pred *> {
      if (C->getKind() == DualK)
        return cast<NaryPred>(C)->getChildren();
      return {C};
    };
    // Compute the intersection of all children's dual-child sets.
    std::vector<const Pred *> Common = DualChildren(RN->getChildren()[0]);
    std::sort(Common.begin(), Common.end());
    for (size_t I = 1; I < RN->getChildren().size() && !Common.empty(); ++I) {
      std::vector<const Pred *> Next = DualChildren(RN->getChildren()[I]);
      std::sort(Next.begin(), Next.end());
      std::vector<const Pred *> Inter;
      std::set_intersection(Common.begin(), Common.end(), Next.begin(),
                            Next.end(), std::back_inserter(Inter));
      Common = std::move(Inter);
    }
    if (Common.empty())
      return Rebuilt;
    std::unordered_set<const Pred *> CommonSet(Common.begin(), Common.end());

    std::vector<const Pred *> Reduced;
    Reduced.reserve(RN->getChildren().size());
    for (const Pred *C : RN->getChildren()) {
      std::vector<const Pred *> Rest;
      for (const Pred *D : DualChildren(C))
        if (!CommonSet.count(D))
          Rest.push_back(D);
      Reduced.push_back(IsAnd ? Ctx.orN(std::move(Rest))
                              : Ctx.andN(std::move(Rest)));
    }
    const Pred *CommonP =
        IsAnd ? Ctx.orN(std::move(Common)) : Ctx.andN(std::move(Common));
    const Pred *Residual =
        IsAnd ? Ctx.andN(std::move(Reduced)) : Ctx.orN(std::move(Reduced));
    return IsAnd ? Ctx.or2(CommonP, Residual) : Ctx.and2(CommonP, Residual);
  }

  /// LoopAll distribution and invariant hoisting (both equivalences):
  ///   ALL_i (A and B)       == ALL_i A  and  ALL_i B
  ///   ALL_i (Inv or B_i)    == Inv or ALL_i B_i
  const Pred *rewriteLoop(const LoopAllPred *L) {
    const Pred *Body = visit(L->getBody());
    sym::SymbolId Var = L->getVar();

    if (const auto *A = dyn_cast<NaryPred>(Body); A && A->isAnd()) {
      std::vector<const Pred *> Parts;
      Parts.reserve(A->getChildren().size());
      for (const Pred *C : A->getChildren())
        Parts.push_back(visit(Ctx.loopAll(Var, L->getLo(), L->getHi(), C)));
      return Ctx.andN(std::move(Parts));
    }

    if (const auto *O = dyn_cast<NaryPred>(Body); O && !O->isAnd()) {
      std::vector<const Pred *> Inv, Variant;
      for (const Pred *C : O->getChildren())
        (C->dependsOn(Var) ? Variant : Inv).push_back(C);
      if (!Inv.empty() && !Variant.empty()) {
        const Pred *Rest =
            Ctx.loopAll(Var, L->getLo(), L->getHi(), Ctx.orN(std::move(Variant)));
        Inv.push_back(visit(Rest));
        return Ctx.orN(std::move(Inv));
      }
    }

    return Ctx.loopAll(Var, L->getLo(), L->getHi(), Body);
  }

  PredContext &Ctx;
  std::unordered_map<const Pred *, const Pred *> Memo;
};

/// Implements strengthenToDepth: a recursive strengthening where leaves
/// depending on a "forbidden" (eliminated loop) variable become false, and
/// LoopAll nodes beyond the depth budget dissolve into their bodies'
/// invariant-sufficient parts.
const Pred *strengthenImpl(PredContext &Ctx, const Pred *P, int Budget,
                           std::vector<sym::SymbolId> &Forbidden) {
  auto DependsOnForbidden = [&](const Pred *Q) {
    for (sym::SymbolId S : Forbidden)
      if (Q->dependsOn(S))
        return true;
    return false;
  };
  switch (P->getKind()) {
  case PredKind::True:
  case PredKind::False:
    return P;
  case PredKind::Cmp:
  case PredKind::Divides:
    return DependsOnForbidden(P) ? Ctx.getFalse() : P;
  case PredKind::And:
  case PredKind::Or: {
    const auto *N = cast<NaryPred>(P);
    std::vector<const Pred *> Cs;
    Cs.reserve(N->getChildren().size());
    for (const Pred *C : N->getChildren())
      Cs.push_back(strengthenImpl(Ctx, C, Budget, Forbidden));
    return N->isAnd() ? Ctx.andN(std::move(Cs)) : Ctx.orN(std::move(Cs));
  }
  case PredKind::LoopAll: {
    const auto *L = cast<LoopAllPred>(P);
    if (DependsOnForbidden(P))
      return Ctx.getFalse(); // Bounds or body mention an eliminated var.
    if (Budget > 0) {
      const Pred *Body =
          strengthenImpl(Ctx, L->getBody(), Budget - 1, Forbidden);
      return Ctx.loopAll(L->getVar(), L->getLo(), L->getHi(), Body);
    }
    // No loop budget left: keep only the parts of the body that hold for
    // every iteration because they do not mention the loop variable.
    Forbidden.push_back(L->getVar());
    const Pred *Body = strengthenImpl(Ctx, L->getBody(), 0, Forbidden);
    Forbidden.pop_back();
    return Body;
  }
  case PredKind::CallSite:
    // Opaque: cannot be judged cheaper than its own evaluation.
    return DependsOnForbidden(P) ? Ctx.getFalse()
                                 : strengthenImpl(Ctx,
                                                  cast<CallSitePred>(P)
                                                      ->getBody(),
                                                  Budget, Forbidden);
  }
  halo_unreachable("covered switch");
}

} // namespace

const Pred *pdag::simplify(PredContext &Ctx, const Pred *P) {
  Simplifier S(Ctx);
  const Pred *R = S.visit(P);
  // Global fixpoint over a few rounds; each round is memoized separately.
  for (int I = 0; I < 3; ++I) {
    Simplifier S2(Ctx);
    const Pred *Next = S2.visit(R);
    if (Next == R)
      break;
    R = Next;
  }
  return R;
}

const Pred *pdag::strengthenToDepth(PredContext &Ctx, const Pred *P,
                                    int MaxDepth) {
  std::vector<sym::SymbolId> Forbidden;
  return simplify(Ctx, strengthenImpl(Ctx, P, MaxDepth, Forbidden));
}

std::vector<CascadeStage> pdag::buildCascade(PredContext &Ctx, const Pred *P) {
  const Pred *Full = simplify(Ctx, P);
  std::vector<CascadeStage> Stages;
  if (Full->isFalse())
    return Stages;

  for (int Depth = 0; Depth < Full->loopDepth(); ++Depth) {
    const Pred *Stage = strengthenToDepth(Ctx, Full, Depth);
    if (Stage->isFalse())
      continue;
    // Skip stages identical to an already-emitted cheaper stage.
    bool Dup = false;
    for (const CascadeStage &S : Stages)
      if (S.P == Stage)
        Dup = true;
    if (Dup)
      continue;
    Stages.push_back(CascadeStage{Stage, Stage->loopDepth()});
    if (Stage == Full)
      return Stages; // The full test already surfaced early.
  }
  Stages.push_back(CascadeStage{Full, Full->loopDepth()});
  return Stages;
}
