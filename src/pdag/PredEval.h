//===- pdag/PredEval.h - Runtime interpretation of predicates --*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprets a PDAG predicate against concrete bindings. This is the
/// "dynamic evaluation" half of the hybrid analysis: the cascade of
/// sufficient conditions extracted at compile time is executed here against
/// the loop's live-in values (Sec. 3.5 / Sec. 5 of the paper).
///
/// Evaluation is short-circuiting; LoopAll nodes iterate their range with
/// early exit on a false body. The rt module layers parallel and-reduction
/// on top for O(N) predicates.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PDAG_PREDEVAL_H
#define HALO_PDAG_PREDEVAL_H

#include "pdag/Pred.h"
#include "sym/Eval.h"

#include <cstdint>
#include <optional>

namespace halo {
namespace pdag {

/// Statistics of one predicate evaluation (for the paper's RTov metric).
/// Shared between the tree-walking interpreter below and the bytecode
/// evaluator in PredCompile.h so callers can aggregate either path.
struct EvalStats {
  uint64_t LeafEvals = 0;
  uint64_t LoopIters = 0;
  /// Loop-invariant sub-predicate results served from the per-evaluation
  /// memo table (bytecode evaluator only).
  uint64_t MemoHits = 0;
  /// Whole-predicate evaluations routed through compiled bytecode.
  uint64_t CompiledEvals = 0;
  /// Whole-predicate evaluations routed through this tree interpreter by
  /// a caller that had the compiled path available (governor fallback).
  uint64_t InterpEvals = 0;
  /// Full symbol-slot binds performed by the *pooled* entry points (they
  /// only rebind when the bindings stamp changed; the scratch-frame
  /// eval/evalParallel paths bind every time and report neither counter).
  uint64_t FrameBinds = 0;
  /// Pooled evaluations that skipped re-binding entirely because the
  /// bindings were unchanged since the frame was last bound.
  uint64_t FrameRebindsSkipped = 0;
  /// Compiled evaluations routed through the block-vectorized tier
  /// (ExprBlockWidth iterations per dispatch). Together with ScalarEvals
  /// this partitions CompiledEvals, so the governor's A/B split is
  /// observable end to end.
  uint64_t BlockEvals = 0;
  /// Compiled evaluations that ran the scalar bytecode tier (non-loop
  /// roots, block-incompatible bodies, short trips, or block eval off).
  uint64_t ScalarEvals = 0;
  /// Block-tier lanes that hit an unbound scalar or out-of-bounds read and
  /// degraded (that lane only) to the conservative-unknown result.
  uint64_t LanesPoisoned = 0;

  EvalStats &operator+=(const EvalStats &O) {
    LeafEvals += O.LeafEvals;
    LoopIters += O.LoopIters;
    MemoHits += O.MemoHits;
    CompiledEvals += O.CompiledEvals;
    InterpEvals += O.InterpEvals;
    FrameBinds += O.FrameBinds;
    FrameRebindsSkipped += O.FrameRebindsSkipped;
    BlockEvals += O.BlockEvals;
    ScalarEvals += O.ScalarEvals;
    LanesPoisoned += O.LanesPoisoned;
    return *this;
  }
};

/// Evaluates \p P under \p B. Returns nullopt if a symbol is unbound or an
/// array access goes out of bounds (the conservative answer is then "test
/// failed", i.e. treat as false).
std::optional<bool> tryEvalPred(const Pred *P, sym::Bindings &B,
                                EvalStats *Stats = nullptr);

/// Evaluates \p P under \p B, asserting that evaluation succeeds.
bool evalPred(const Pred *P, sym::Bindings &B, EvalStats *Stats = nullptr);

} // namespace pdag
} // namespace halo

#endif // HALO_PDAG_PREDEVAL_H
