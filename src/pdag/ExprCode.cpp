//===- pdag/ExprCode.cpp - Shared expression bytecode ---------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "pdag/ExprCode.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace halo;
using namespace halo::pdag;

namespace {

int64_t floorDivInt(int64_t A, int64_t D) {
  int64_t Q = A / D;
  if ((A % D) != 0 && A < 0)
    --Q;
  return Q;
}

/// Net stack effect of one opcode (every op's effect is static, which is
/// what makes the exact-depth precompute possible).
int stackDelta(ExprInstr::Op Op) {
  switch (Op) {
  case ExprInstr::Op::Const:
  case ExprInstr::Op::Scalar:
  case ExprInstr::Op::ArrayLoadOff:
    return 1;
  case ExprInstr::Op::ArrayLoad:
  case ExprInstr::Op::FloorDiv:
  case ExprInstr::Op::Mod:
  case ExprInstr::Op::MulConst:
  case ExprInstr::Op::AddConst:
    return 0;
  case ExprInstr::Op::Min:
  case ExprInstr::Op::Max:
  case ExprInstr::Op::Mul:
  case ExprInstr::Op::MulConstAdd:
    return -1;
  }
  halo_unreachable("covered switch");
}

} // namespace

uint32_t ExprCodeBuilder::scalarSlot(sym::SymbolId S) {
  auto It = ScalarSlotFor.find(S);
  if (It != ScalarSlotFor.end())
    return It->second;
  uint32_t Slot = static_cast<uint32_t>(ScalarSlots.size());
  ScalarSlots.push_back(S);
  ScalarSlotFor.emplace(S, Slot);
  return Slot;
}

uint32_t ExprCodeBuilder::arraySlot(sym::SymbolId S) {
  auto It = ArraySlotFor.find(S);
  if (It != ArraySlotFor.end())
    return It->second;
  uint32_t Slot = static_cast<uint32_t>(ArraySlots.size());
  ArraySlots.push_back(S);
  ArraySlotFor.emplace(S, Slot);
  return Slot;
}

void ExprCodeBuilder::emit(ExprInstr::Op Op, uint32_t Slot, int64_t Imm) {
  Code.push_back(ExprInstr{Op, Slot, Imm});
  Depth = static_cast<uint32_t>(static_cast<int>(Depth) + stackDelta(Op));
  MaxDepth = std::max(MaxDepth, Depth);
}

/// Matches an index of the form `scalar + c` (or a bare scalar); these are
/// the A(i) / A(i+1) subscripts that dominate LoopAll bodies and are worth
/// a fused load instruction.
bool ExprCodeBuilder::matchAffineIndex(const sym::Expr *E, sym::SymbolId &S,
                                       int64_t &Off) const {
  if (const auto *R = dyn_cast<sym::SymRefExpr>(E)) {
    S = R->getSymbol();
    Off = 0;
    return true;
  }
  const auto *A = dyn_cast<sym::AddExpr>(E);
  if (!A || A->getTerms().size() != 1)
    return false;
  const sym::Monomial &M = A->getTerms().front();
  const auto *R = dyn_cast<sym::SymRefExpr>(M.Prod);
  if (!R || M.Coeff != 1)
    return false;
  S = R->getSymbol();
  Off = A->getConstant();
  return true;
}

/// Emits \p E onto the expression code stream (one pushed value).
void ExprCodeBuilder::emitExpr(const sym::Expr *E) {
  using sym::ExprKind;
  // Fold any constant subexpression (canonicalization makes most of these
  // IntConst already; this catches interned constants reached through
  // Min/Max/Div/Mod wrappers too).
  if (auto C = Ctx.constValue(E)) {
    emit(ExprInstr::Op::Const, 0, *C);
    return;
  }
  switch (E->getKind()) {
  case ExprKind::IntConst:
    emit(ExprInstr::Op::Const, 0, cast<sym::IntConstExpr>(E)->getValue());
    return;
  case ExprKind::SymRef:
    emit(ExprInstr::Op::Scalar,
         scalarSlot(cast<sym::SymRefExpr>(E)->getSymbol()));
    return;
  case ExprKind::ArrayRef: {
    const auto *R = cast<sym::ArrayRefExpr>(E);
    sym::SymbolId IdxSym;
    int64_t Off;
    if (matchAffineIndex(R->getIndex(), IdxSym, Off) &&
        Off >= std::numeric_limits<int32_t>::min() &&
        Off <= std::numeric_limits<int32_t>::max()) {
      emit(ExprInstr::Op::ArrayLoadOff, arraySlot(R->getArray()),
           ExprInstr::packLoadOff(scalarSlot(IdxSym),
                                  static_cast<int32_t>(Off)));
      return;
    }
    emitExpr(R->getIndex());
    emit(ExprInstr::Op::ArrayLoad, arraySlot(R->getArray()));
    return;
  }
  case ExprKind::Min:
  case ExprKind::Max: {
    const auto *M = cast<sym::MinMaxExpr>(E);
    emitExpr(M->getLHS());
    emitExpr(M->getRHS());
    emit(M->isMin() ? ExprInstr::Op::Min : ExprInstr::Op::Max);
    return;
  }
  case ExprKind::FloorDiv:
  case ExprKind::Mod: {
    const auto *D = cast<sym::DivModExpr>(E);
    emitExpr(D->getOperand());
    emit(D->isDiv() ? ExprInstr::Op::FloorDiv : ExprInstr::Op::Mod, 0,
         D->getDivisor());
    return;
  }
  case ExprKind::Mul: {
    const auto &Factors = cast<sym::MulExpr>(E)->getFactors();
    emitExpr(Factors.front());
    for (size_t I = 1; I < Factors.size(); ++I) {
      emitExpr(Factors[I]);
      emit(ExprInstr::Op::Mul);
    }
    return;
  }
  case ExprKind::Add: {
    // Accumulate in-place, starting from a unit-coefficient term when one
    // exists so the common difference shape `a - b` lowers to
    // [a][b][MulConstAdd -1] with no constant seed. Reordering is safe:
    // operands are side-effect free and any failing operand fails the
    // whole expression regardless of order.
    const auto *A = cast<sym::AddExpr>(E);
    std::vector<const sym::Monomial *> Terms;
    Terms.reserve(A->getTerms().size());
    for (const sym::Monomial &M : A->getTerms())
      Terms.push_back(&M);
    for (size_t I = 0; I < Terms.size(); ++I)
      if (Terms[I]->Coeff == 1) {
        std::swap(Terms[0], Terms[I]);
        break;
      }
    emitExpr(Terms.front()->Prod);
    if (Terms.front()->Coeff != 1)
      emit(ExprInstr::Op::MulConst, 0, Terms.front()->Coeff);
    for (size_t I = 1; I < Terms.size(); ++I) {
      emitExpr(Terms[I]->Prod);
      emit(ExprInstr::Op::MulConstAdd, 0, Terms[I]->Coeff);
    }
    if (A->getConstant() != 0)
      emit(ExprInstr::Op::AddConst, 0, A->getConstant());
    return;
  }
  }
  halo_unreachable("covered switch");
}

std::pair<uint32_t, uint32_t> ExprCodeBuilder::compile(const sym::Expr *E) {
  uint32_t Begin = static_cast<uint32_t>(Code.size());
  Depth = 0; // each range starts from an empty stack
  // Resource guards: the depth pre-check runs *before* the recursive
  // emitter (an in-recursion cap would overflow the C++ stack first on
  // hostile nesting), and the code ceiling bounds total emitted bytecode.
  // A tripped guard emits one balanced dummy constant so every caller's
  // range bookkeeping stays well-formed; the owning compiler checks
  // exceeded() and discards the whole object.
  if (exprNestDepth(E, LoweringMaxNestDepth) > LoweringMaxNestDepth ||
      Code.size() >= LoweringMaxCodeLen) {
    Exceeded = true;
    emit(ExprInstr::Op::Const, 0, 0);
    return {Begin, static_cast<uint32_t>(Code.size())};
  }
  emitExpr(E);
  if (Code.size() > LoweringMaxCodeLen)
    Exceeded = true;
  assert(Depth == 1 && "expression range must leave exactly one value");
  return {Begin, static_cast<uint32_t>(Code.size())};
}

unsigned pdag::exprNestDepth(const sym::Expr *E, unsigned Cap) {
  using sym::ExprKind;
  // Iterative post-order with per-node memo, saturating at Cap + 1.
  std::unordered_map<const sym::Expr *, unsigned> Memo;
  auto ForEachChild = [](const sym::Expr *N, auto F) {
    switch (N->getKind()) {
    case ExprKind::IntConst:
    case ExprKind::SymRef:
      break;
    case ExprKind::ArrayRef:
      F(cast<sym::ArrayRefExpr>(N)->getIndex());
      break;
    case ExprKind::Min:
    case ExprKind::Max:
      F(cast<sym::MinMaxExpr>(N)->getLHS());
      F(cast<sym::MinMaxExpr>(N)->getRHS());
      break;
    case ExprKind::FloorDiv:
    case ExprKind::Mod:
      F(cast<sym::DivModExpr>(N)->getOperand());
      break;
    case ExprKind::Mul:
      for (const sym::Expr *C : cast<sym::MulExpr>(N)->getFactors())
        F(C);
      break;
    case ExprKind::Add:
      for (const sym::Monomial &M : cast<sym::AddExpr>(N)->getTerms())
        F(M.Prod);
      break;
    }
  };
  struct Frame {
    const sym::Expr *E;
    bool ChildrenPushed;
  };
  std::vector<Frame> Stack{{E, false}};
  while (!Stack.empty()) {
    Frame F = Stack.back();
    Stack.pop_back();
    if (Memo.count(F.E))
      continue;
    if (!F.ChildrenPushed) {
      Stack.push_back({F.E, true});
      ForEachChild(F.E, [&](const sym::Expr *C) {
        if (!Memo.count(C))
          Stack.push_back({C, false});
      });
      continue;
    }
    unsigned MaxChild = 0;
    ForEachChild(F.E, [&](const sym::Expr *C) {
      auto It = Memo.find(C);
      unsigned D = It == Memo.end() ? Cap + 1 : It->second;
      if (D > MaxChild)
        MaxChild = D;
    });
    Memo.emplace(F.E, MaxChild >= Cap ? Cap + 1 : MaxChild + 1);
  }
  return Memo.at(E);
}

uint32_t pdag::exprCodeMaxDepth(const ExprInstr *Code, uint32_t Begin,
                                uint32_t End) {
  int Depth = 0, Max = 0;
  for (uint32_t Ip = Begin; Ip != End; ++Ip) {
    Depth += stackDelta(Code[Ip].Opcode);
    Max = std::max(Max, Depth);
  }
  assert(Depth == 1 && "expression range must leave exactly one value");
  return static_cast<uint32_t>(Max);
}

std::optional<int64_t>
pdag::runExprCode(const ExprInstr *Code, uint32_t Begin, uint32_t End,
                  const int64_t *Scalars, const uint8_t *Bound,
                  const sym::ArrayBinding *const *Arrays, int64_t *Stack) {
  int64_t *S = Stack;
  size_t SP = 0;
  for (uint32_t Ip = Begin; Ip != End; ++Ip) {
    const ExprInstr &I = Code[Ip];
    switch (I.Opcode) {
    case ExprInstr::Op::Const:
      S[SP++] = I.Imm;
      break;
    case ExprInstr::Op::Scalar:
      if (!Bound[I.Slot])
        return std::nullopt;
      S[SP++] = Scalars[I.Slot];
      break;
    case ExprInstr::Op::ArrayLoad: {
      const sym::ArrayBinding *A = Arrays[I.Slot];
      const int64_t Idx = S[SP - 1];
      if (!A || !A->inBounds(Idx))
        return std::nullopt;
      S[SP - 1] = A->at(Idx);
      break;
    }
    case ExprInstr::Op::ArrayLoadOff: {
      const sym::ArrayBinding *A = Arrays[I.Slot];
      const uint32_t IdxSlot = I.loadOffIdxSlot();
      if (!Bound[IdxSlot])
        return std::nullopt;
      const int64_t Idx = Scalars[IdxSlot] + I.loadOffDelta();
      if (!A || !A->inBounds(Idx))
        return std::nullopt;
      S[SP++] = A->at(Idx);
      break;
    }
    case ExprInstr::Op::Min: {
      const int64_t R = S[--SP];
      S[SP - 1] = std::min(S[SP - 1], R);
      break;
    }
    case ExprInstr::Op::Max: {
      const int64_t R = S[--SP];
      S[SP - 1] = std::max(S[SP - 1], R);
      break;
    }
    case ExprInstr::Op::FloorDiv:
      S[SP - 1] = floorDivInt(S[SP - 1], I.Imm);
      break;
    case ExprInstr::Op::Mod: {
      const int64_t V = S[SP - 1];
      S[SP - 1] = V - floorDivInt(V, I.Imm) * I.Imm;
      break;
    }
    case ExprInstr::Op::Mul: {
      const int64_t R = S[--SP];
      S[SP - 1] *= R;
      break;
    }
    case ExprInstr::Op::MulConst:
      S[SP - 1] *= I.Imm;
      break;
    case ExprInstr::Op::AddConst:
      S[SP - 1] += I.Imm;
      break;
    case ExprInstr::Op::MulConstAdd: {
      const int64_t V = S[--SP];
      S[SP - 1] += I.Imm * V;
      break;
    }
    }
  }
  assert(SP == 1 && "expression code must leave one value");
  return S[0];
}

uint32_t pdag::runExprCodeBlock(const ExprInstr *Code, uint32_t Begin,
                                uint32_t End, const int64_t *Scalars,
                                const uint8_t *Bound,
                                const sym::ArrayBinding *const *Arrays,
                                uint32_t VarSlot, int64_t VarBase,
                                unsigned Cnt, int64_t *LaneStack,
                                int64_t *Out) {
  constexpr unsigned W = ExprBlockWidth;
  assert(Cnt >= 1 && Cnt <= W && "block width out of range");
  const uint32_t AllFail =
      Cnt >= 32 ? ~0u : ((1u << Cnt) - 1u); // Cnt <= W == 16 in practice
  int64_t *S = LaneStack;
  size_t SP = 0;
  uint32_t Fail = 0;
  for (uint32_t Ip = Begin; Ip != End; ++Ip) {
    const ExprInstr &I = Code[Ip];
    switch (I.Opcode) {
    case ExprInstr::Op::Const: {
      int64_t *R = S + SP++ * W;
      for (unsigned L = 0; L < Cnt; ++L)
        R[L] = I.Imm;
      break;
    }
    case ExprInstr::Op::Scalar: {
      int64_t *R = S + SP++ * W;
      if (I.Slot == VarSlot) {
        // The loop variable: each lane gets its own consecutive value.
        for (unsigned L = 0; L < Cnt; ++L)
          R[L] = VarBase + static_cast<int64_t>(L);
      } else if (!Bound[I.Slot]) {
        // Uniform unbound scalar poisons every lane identically.
        goto AllLanesPoisoned;
      } else {
        const int64_t V = Scalars[I.Slot];
        for (unsigned L = 0; L < Cnt; ++L)
          R[L] = V;
      }
      break;
    }
    case ExprInstr::Op::ArrayLoad: {
      // General pop-index form: per-lane bounds checks. Failed lanes are
      // forced to 0 so downstream arithmetic never sees garbage.
      const sym::ArrayBinding *A = Arrays[I.Slot];
      int64_t *R = S + (SP - 1) * W;
      for (unsigned L = 0; L < Cnt; ++L) {
        const uint32_t Bit = 1u << L;
        if ((Fail & Bit) || !A || !A->inBounds(R[L])) {
          Fail |= Bit;
          R[L] = 0;
        } else {
          R[L] = A->at(R[L]);
        }
      }
      if (Fail == AllFail)
        goto AllLanesPoisoned;
      break;
    }
    case ExprInstr::Op::ArrayLoadOff: {
      const sym::ArrayBinding *A = Arrays[I.Slot];
      const uint32_t IdxSlot = I.loadOffIdxSlot();
      const int64_t Off = I.loadOffDelta();
      int64_t *R = S + SP++ * W;
      if (IdxSlot == VarSlot) {
        // Consecutive indices VarBase+Off .. VarBase+Off+Cnt-1: one range
        // precheck covers the whole block, and the loads are contiguous.
        const int64_t Base = VarBase + Off;
        if (A && A->inBounds(Base) &&
            A->inBounds(Base + static_cast<int64_t>(Cnt) - 1)) {
          const int64_t *Src = A->Vals.data() + (Base - A->Lo);
          for (unsigned L = 0; L < Cnt; ++L)
            R[L] = Src[L];
        } else {
          // Block straddles an array edge (or the array is unbound):
          // per-lane checks poison exactly the out-of-range lanes.
          for (unsigned L = 0; L < Cnt; ++L) {
            const int64_t Idx = Base + static_cast<int64_t>(L);
            if (!A || !A->inBounds(Idx)) {
              Fail |= 1u << L;
              R[L] = 0;
            } else {
              R[L] = A->at(Idx);
            }
          }
          if (Fail == AllFail)
            goto AllLanesPoisoned;
        }
      } else {
        // Loop-invariant subscript: one check, one load, broadcast.
        if (!Bound[IdxSlot])
          goto AllLanesPoisoned;
        const int64_t Idx = Scalars[IdxSlot] + Off;
        if (!A || !A->inBounds(Idx))
          goto AllLanesPoisoned;
        const int64_t V = A->at(Idx);
        for (unsigned L = 0; L < Cnt; ++L)
          R[L] = V;
      }
      break;
    }
    case ExprInstr::Op::Min: {
      const int64_t *B2 = S + --SP * W;
      int64_t *R = S + (SP - 1) * W;
      for (unsigned L = 0; L < Cnt; ++L)
        R[L] = std::min(R[L], B2[L]);
      break;
    }
    case ExprInstr::Op::Max: {
      const int64_t *B2 = S + --SP * W;
      int64_t *R = S + (SP - 1) * W;
      for (unsigned L = 0; L < Cnt; ++L)
        R[L] = std::max(R[L], B2[L]);
      break;
    }
    case ExprInstr::Op::FloorDiv: {
      int64_t *R = S + (SP - 1) * W;
      for (unsigned L = 0; L < Cnt; ++L)
        R[L] = floorDivInt(R[L], I.Imm);
      break;
    }
    case ExprInstr::Op::Mod: {
      int64_t *R = S + (SP - 1) * W;
      for (unsigned L = 0; L < Cnt; ++L)
        R[L] = R[L] - floorDivInt(R[L], I.Imm) * I.Imm;
      break;
    }
    case ExprInstr::Op::Mul: {
      const int64_t *B2 = S + --SP * W;
      int64_t *R = S + (SP - 1) * W;
      for (unsigned L = 0; L < Cnt; ++L)
        R[L] *= B2[L];
      break;
    }
    case ExprInstr::Op::MulConst: {
      int64_t *R = S + (SP - 1) * W;
      for (unsigned L = 0; L < Cnt; ++L)
        R[L] *= I.Imm;
      break;
    }
    case ExprInstr::Op::AddConst: {
      int64_t *R = S + (SP - 1) * W;
      for (unsigned L = 0; L < Cnt; ++L)
        R[L] += I.Imm;
      break;
    }
    case ExprInstr::Op::MulConstAdd: {
      const int64_t *B2 = S + --SP * W;
      int64_t *R = S + (SP - 1) * W;
      // +-1 coefficients (the a-b difference shape every compare lowers
      // to) skip the lane multiply: 64-bit vector multiplies are several
      // times the cost of add/sub on common SIMD ISAs.
      if (I.Imm == -1) {
        for (unsigned L = 0; L < Cnt; ++L)
          R[L] -= B2[L];
      } else if (I.Imm == 1) {
        for (unsigned L = 0; L < Cnt; ++L)
          R[L] += B2[L];
      } else {
        for (unsigned L = 0; L < Cnt; ++L)
          R[L] += I.Imm * B2[L];
      }
      break;
    }
    }
  }
  assert(SP == 1 && "expression code must leave one value");
  for (unsigned L = 0; L < Cnt; ++L)
    Out[L] = S[L];
  return Fail;

AllLanesPoisoned:
  // Every lane is poisoned: the results can never matter, so skip the
  // rest of the range (semantically a no-op; all lanes report fail). Only
  // the fail-setting opcodes test for this, keeping the arithmetic ops'
  // dispatch loop branch-free.
  for (unsigned L = 0; L < Cnt; ++L)
    Out[L] = 0;
  return AllFail;
}
