//===- pdag/ExprCode.cpp - Shared expression bytecode ---------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "pdag/ExprCode.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace halo;
using namespace halo::pdag;

namespace {

int64_t floorDivInt(int64_t A, int64_t D) {
  int64_t Q = A / D;
  if ((A % D) != 0 && A < 0)
    --Q;
  return Q;
}

} // namespace

uint32_t ExprCodeBuilder::scalarSlot(sym::SymbolId S) {
  auto It = ScalarSlotFor.find(S);
  if (It != ScalarSlotFor.end())
    return It->second;
  uint32_t Slot = static_cast<uint32_t>(ScalarSlots.size());
  ScalarSlots.push_back(S);
  ScalarSlotFor.emplace(S, Slot);
  return Slot;
}

uint32_t ExprCodeBuilder::arraySlot(sym::SymbolId S) {
  auto It = ArraySlotFor.find(S);
  if (It != ArraySlotFor.end())
    return It->second;
  uint32_t Slot = static_cast<uint32_t>(ArraySlots.size());
  ArraySlots.push_back(S);
  ArraySlotFor.emplace(S, Slot);
  return Slot;
}

/// Matches an index of the form `scalar + c` (or a bare scalar); these are
/// the A(i) / A(i+1) subscripts that dominate LoopAll bodies and are worth
/// a fused load instruction.
bool ExprCodeBuilder::matchAffineIndex(const sym::Expr *E, sym::SymbolId &S,
                                       int64_t &Off) const {
  if (const auto *R = dyn_cast<sym::SymRefExpr>(E)) {
    S = R->getSymbol();
    Off = 0;
    return true;
  }
  const auto *A = dyn_cast<sym::AddExpr>(E);
  if (!A || A->getTerms().size() != 1)
    return false;
  const sym::Monomial &M = A->getTerms().front();
  const auto *R = dyn_cast<sym::SymRefExpr>(M.Prod);
  if (!R || M.Coeff != 1)
    return false;
  S = R->getSymbol();
  Off = A->getConstant();
  return true;
}

/// Emits \p E onto the expression code stream (one pushed value).
void ExprCodeBuilder::emitExpr(const sym::Expr *E) {
  using sym::ExprKind;
  // Fold any constant subexpression (canonicalization makes most of these
  // IntConst already; this catches interned constants reached through
  // Min/Max/Div/Mod wrappers too).
  if (auto C = Ctx.constValue(E)) {
    emit(ExprInstr::Op::Const, 0, *C);
    return;
  }
  switch (E->getKind()) {
  case ExprKind::IntConst:
    emit(ExprInstr::Op::Const, 0, cast<sym::IntConstExpr>(E)->getValue());
    return;
  case ExprKind::SymRef:
    emit(ExprInstr::Op::Scalar,
         scalarSlot(cast<sym::SymRefExpr>(E)->getSymbol()));
    return;
  case ExprKind::ArrayRef: {
    const auto *R = cast<sym::ArrayRefExpr>(E);
    sym::SymbolId IdxSym;
    int64_t Off;
    if (matchAffineIndex(R->getIndex(), IdxSym, Off)) {
      emit(ExprInstr::Op::ArrayLoadOff, arraySlot(R->getArray()), Off,
           scalarSlot(IdxSym));
      return;
    }
    emitExpr(R->getIndex());
    emit(ExprInstr::Op::ArrayLoad, arraySlot(R->getArray()));
    return;
  }
  case ExprKind::Min:
  case ExprKind::Max: {
    const auto *M = cast<sym::MinMaxExpr>(E);
    emitExpr(M->getLHS());
    emitExpr(M->getRHS());
    emit(M->isMin() ? ExprInstr::Op::Min : ExprInstr::Op::Max);
    return;
  }
  case ExprKind::FloorDiv:
  case ExprKind::Mod: {
    const auto *D = cast<sym::DivModExpr>(E);
    emitExpr(D->getOperand());
    emit(D->isDiv() ? ExprInstr::Op::FloorDiv : ExprInstr::Op::Mod, 0,
         D->getDivisor());
    return;
  }
  case ExprKind::Mul: {
    const auto &Factors = cast<sym::MulExpr>(E)->getFactors();
    emitExpr(Factors.front());
    for (size_t I = 1; I < Factors.size(); ++I) {
      emitExpr(Factors[I]);
      emit(ExprInstr::Op::Mul);
    }
    return;
  }
  case ExprKind::Add: {
    // Accumulate in-place, starting from a unit-coefficient term when one
    // exists so the common difference shape `a - b` lowers to
    // [a][b][MulConstAdd -1] with no constant seed. Reordering is safe:
    // operands are side-effect free and any failing operand fails the
    // whole expression regardless of order.
    const auto *A = cast<sym::AddExpr>(E);
    std::vector<const sym::Monomial *> Terms;
    Terms.reserve(A->getTerms().size());
    for (const sym::Monomial &M : A->getTerms())
      Terms.push_back(&M);
    for (size_t I = 0; I < Terms.size(); ++I)
      if (Terms[I]->Coeff == 1) {
        std::swap(Terms[0], Terms[I]);
        break;
      }
    emitExpr(Terms.front()->Prod);
    if (Terms.front()->Coeff != 1)
      emit(ExprInstr::Op::MulConst, 0, Terms.front()->Coeff);
    for (size_t I = 1; I < Terms.size(); ++I) {
      emitExpr(Terms[I]->Prod);
      emit(ExprInstr::Op::MulConstAdd, 0, Terms[I]->Coeff);
    }
    if (A->getConstant() != 0)
      emit(ExprInstr::Op::AddConst, 0, A->getConstant());
    return;
  }
  }
  halo_unreachable("covered switch");
}

std::pair<uint32_t, uint32_t> ExprCodeBuilder::compile(const sym::Expr *E) {
  uint32_t Begin = static_cast<uint32_t>(Code.size());
  emitExpr(E);
  return {Begin, static_cast<uint32_t>(Code.size())};
}

std::optional<int64_t>
pdag::runExprCode(const ExprInstr *Code, uint32_t Begin, uint32_t End,
                  const int64_t *Scalars, const uint8_t *Bound,
                  const sym::ArrayBinding *const *Arrays, int64_t *Stack) {
  int64_t *S = Stack;
  size_t SP = 0;
  for (uint32_t Ip = Begin; Ip != End; ++Ip) {
    const ExprInstr &I = Code[Ip];
    switch (I.Opcode) {
    case ExprInstr::Op::Const:
      S[SP++] = I.Imm;
      break;
    case ExprInstr::Op::Scalar:
      if (!Bound[I.Slot])
        return std::nullopt;
      S[SP++] = Scalars[I.Slot];
      break;
    case ExprInstr::Op::ArrayLoad: {
      const sym::ArrayBinding *A = Arrays[I.Slot];
      const int64_t Idx = S[SP - 1];
      if (!A || !A->inBounds(Idx))
        return std::nullopt;
      S[SP - 1] = A->at(Idx);
      break;
    }
    case ExprInstr::Op::ArrayLoadOff: {
      const sym::ArrayBinding *A = Arrays[I.Slot];
      if (!Bound[I.Slot2])
        return std::nullopt;
      const int64_t Idx = Scalars[I.Slot2] + I.Imm;
      if (!A || !A->inBounds(Idx))
        return std::nullopt;
      S[SP++] = A->at(Idx);
      break;
    }
    case ExprInstr::Op::Min: {
      const int64_t R = S[--SP];
      S[SP - 1] = std::min(S[SP - 1], R);
      break;
    }
    case ExprInstr::Op::Max: {
      const int64_t R = S[--SP];
      S[SP - 1] = std::max(S[SP - 1], R);
      break;
    }
    case ExprInstr::Op::FloorDiv:
      S[SP - 1] = floorDivInt(S[SP - 1], I.Imm);
      break;
    case ExprInstr::Op::Mod: {
      const int64_t V = S[SP - 1];
      S[SP - 1] = V - floorDivInt(V, I.Imm) * I.Imm;
      break;
    }
    case ExprInstr::Op::Mul: {
      const int64_t R = S[--SP];
      S[SP - 1] *= R;
      break;
    }
    case ExprInstr::Op::MulConst:
      S[SP - 1] *= I.Imm;
      break;
    case ExprInstr::Op::AddConst:
      S[SP - 1] += I.Imm;
      break;
    case ExprInstr::Op::MulConstAdd: {
      const int64_t V = S[--SP];
      S[SP - 1] += I.Imm * V;
      break;
    }
    }
  }
  assert(SP == 1 && "expression code must leave one value");
  return S[0];
}
