//===- pdag/PredEval.cpp - Runtime interpretation of predicates -----------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "pdag/PredEval.h"

#include "support/Error.h"

#include <cassert>

using namespace halo;
using namespace halo::pdag;

std::optional<bool> pdag::tryEvalPred(const Pred *P, sym::Bindings &B,
                                      EvalStats *Stats) {
  switch (P->getKind()) {
  case PredKind::True:
    return true;
  case PredKind::False:
    return false;
  case PredKind::Cmp: {
    const auto *C = cast<CmpPred>(P);
    auto V = sym::tryEval(C->getExpr(), B);
    if (!V)
      return std::nullopt;
    if (Stats)
      ++Stats->LeafEvals;
    switch (C->getRel()) {
    case CmpRel::GE0:
      return *V >= 0;
    case CmpRel::EQ0:
      return *V == 0;
    case CmpRel::NE0:
      return *V != 0;
    }
    halo_unreachable("covered switch");
  }
  case PredKind::Divides: {
    const auto *D = cast<DividesPred>(P);
    auto DV = sym::tryEval(D->getDivisor(), B);
    auto VV = sym::tryEval(D->getValue(), B);
    if (!DV || !VV)
      return std::nullopt;
    if (Stats)
      ++Stats->LeafEvals;
    int64_t Div = *DV < 0 ? -*DV : *DV;
    bool Holds = Div == 0 ? (*VV == 0) : (*VV % Div == 0);
    return Holds != D->isNegated();
  }
  case PredKind::And:
  case PredKind::Or: {
    const auto *N = cast<NaryPred>(P);
    const bool IsAnd = N->isAnd();
    // Short-circuit, but propagate evaluation failure conservatively: a
    // failed child only matters if no other child decides the result.
    bool SawFailure = false;
    for (const Pred *C : N->getChildren()) {
      auto V = tryEvalPred(C, B, Stats);
      if (!V) {
        SawFailure = true;
        continue;
      }
      if (*V != IsAnd)
        return *V; // false decides an And; true decides an Or.
    }
    if (SawFailure)
      return std::nullopt;
    return IsAnd;
  }
  case PredKind::LoopAll: {
    const auto *L = cast<LoopAllPred>(P);
    auto Lo = sym::tryEval(L->getLo(), B);
    auto Hi = sym::tryEval(L->getHi(), B);
    if (!Lo || !Hi)
      return std::nullopt;
    auto Saved = B.scalar(L->getVar());
    bool Result = true;
    std::optional<bool> Out = true;
    for (int64_t I = *Lo; I <= *Hi; ++I) {
      B.setScalar(L->getVar(), I);
      if (Stats)
        ++Stats->LoopIters;
      auto V = tryEvalPred(L->getBody(), B, Stats);
      if (!V) {
        Out = std::nullopt;
        break;
      }
      if (!*V) {
        Result = false;
        Out = false;
        break;
      }
    }
    // Restore the caller's binding exactly (erasing when the variable was
    // unbound): leaking the last iteration value would make the result of
    // a sibling sub-predicate depend on evaluation order, and diverge
    // from the compiled evaluator's frame-restore semantics.
    if (Saved)
      B.setScalar(L->getVar(), *Saved);
    else
      B.clearScalar(L->getVar());
    if (!Out)
      return std::nullopt;
    return Result && *Out;
  }
  case PredKind::CallSite: {
    // Opaque barrier: the body is evaluated in the caller's bindings; the
    // analysis only emits this node when the mapping is identity-safe.
    return tryEvalPred(cast<CallSitePred>(P)->getBody(), B, Stats);
  }
  }
  halo_unreachable("covered switch");
}

bool pdag::evalPred(const Pred *P, sym::Bindings &B, EvalStats *Stats) {
  auto V = tryEvalPred(P, B, Stats);
  assert(V && "predicate evaluation failed: unbound symbol");
  return *V;
}
