//===- pdag/PredSimplify.h - Predicate simplification & cascade -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predicate-program optimizations of Sec. 3.5:
///
///  - `simplify`   : semantics-preserving rewrites — and/or flattening
///    (done by the constructors), common-factor extraction
///    `(B1 or A) and ... and (Bp or A)  ==  (B1 and ... and Bp) or A`,
///    distribution of LoopAll over And, and hoisting of loop-invariant
///    disjuncts outside LoopAll nodes:
///    `ALL_i (A_inv or B_i)  ==  A_inv or ALL_i B_i`.
///    These are equivalences, verified by the property tests.
///
///  - `strengthenToDepth` : extracts the O(N^d)-bounded sufficient
///    condition from a predicate by replacing deeper loop nodes with their
///    invariant-sufficient parts (inner loop nodes become `false` exactly
///    as in Fig. 9a). The result implies the input.
///
///  - `buildCascade` : orders the extracted conditions by estimated
///    complexity, producing the paper's cascade of increasingly expensive
///    runtime tests (first success wins).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PDAG_PREDSIMPLIFY_H
#define HALO_PDAG_PREDSIMPLIFY_H

#include "pdag/Pred.h"

#include <vector>

namespace halo {
namespace pdag {

/// Applies the semantics-preserving simplifications of Sec. 3.5 until a
/// fixpoint (bounded). The result is logically equivalent to \p P.
const Pred *simplify(PredContext &Ctx, const Pred *P);

/// Returns a predicate that implies \p P and whose loop-nest depth is at
/// most \p MaxDepth (0 = an O(1) test). May return false when nothing
/// useful survives at that complexity.
const Pred *strengthenToDepth(PredContext &Ctx, const Pred *P, int MaxDepth);

/// One stage of the runtime test cascade.
struct CascadeStage {
  const Pred *P = nullptr;
  /// Loop-nest depth of the test: 0 = O(1), 1 = O(N), ...
  int Depth = 0;
};

/// Builds the cascade of sufficient independence conditions for \p P,
/// ordered by increasing complexity; the last stage is \p P itself. Stages
/// that fold to false or duplicate a cheaper stage are dropped. An empty
/// result means \p P is the false predicate.
std::vector<CascadeStage> buildCascade(PredContext &Ctx, const Pred *P);

} // namespace pdag
} // namespace halo

#endif // HALO_PDAG_PREDSIMPLIFY_H
