//===- usr/USRTransform.cpp - USR reshaping & overestimates ---------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "usr/USRTransform.h"

#include "support/Error.h"
#include "sym/Range.h"

#include <algorithm>

using namespace halo;
using namespace halo::usr;
using sym::Expr;
using sym::SymbolId;

//===----------------------------------------------------------------------===//
// UMEG view and distribution (Fig. 8b)
//===----------------------------------------------------------------------===//

std::optional<UMEGView> usr::viewUMEG(USRContext &Ctx, const USR *S) {
  pdag::PredContext &P = Ctx.predCtx();
  std::vector<UMEGComponent> Comps;
  std::vector<const USR *> Ungated;

  auto AddChild = [&](const USR *C) {
    if (const auto *G = dyn_cast<GateUSR>(C))
      Comps.push_back(UMEGComponent{G->getGate(), G->getChild()});
    else
      Ungated.push_back(C);
  };

  if (const auto *U = dyn_cast<UnionUSR>(S)) {
    for (const USR *C : U->getChildren())
      AddChild(C);
  } else {
    AddChild(S);
  }
  if (Comps.empty())
    return std::nullopt;

  // Pairwise mutual exclusivity, provable in the predicate algebra.
  for (size_t I = 0; I < Comps.size(); ++I)
    for (size_t J = I + 1; J < Comps.size(); ++J)
      if (!P.and2(Comps[I].Gate, Comps[J].Gate)->isFalse())
        return std::nullopt;

  return UMEGView{std::move(Comps), Ctx.unionN(std::move(Ungated))};
}

namespace {

/// Distributes `X op Y` inside compatible UMEG shapes. Returns null when
/// the shapes do not allow an exact distribution.
const USR *tryUMEGDistribute(USRContext &Ctx, USRKind Op, const USR *X,
                             const USR *Y) {
  pdag::PredContext &P = Ctx.predCtx();
  auto VX = viewUMEG(Ctx, X);
  auto VY = viewUMEG(Ctx, Y);
  if (!VY)
    return nullptr;
  if (!VX) {
    // X carries no gates: split it exhaustively over Y's (mutually
    // exclusive) gate space — X == h1#X u ... u hn#X u (not h1 and ...)#X.
    // This is the normalization step of Fig. 8(b) (content S6 appearing
    // under every gate), and produces exactly the Fig. 3(c) shape for the
    // running SOLVH example.
    UMEGView Split;
    std::vector<const pdag::Pred *> Negs;
    for (const UMEGComponent &C : VY->Components) {
      Split.Components.push_back(UMEGComponent{C.Gate, X});
      const pdag::Pred *NC = P.tryNot(C.Gate);
      if (!NC)
        return nullptr;
      Negs.push_back(NC);
    }
    const pdag::Pred *Rest = P.andN(std::move(Negs));
    if (!Rest->isFalse())
      Split.Components.push_back(UMEGComponent{Rest, X});
    Split.Ungated = Ctx.empty();
    VX = std::move(Split);
  }

  // Compatibility: every gate of Y must match a gate of X or be mutually
  // exclusive with all of them (then its content is invisible inside X's
  // gates). Ungated content of Y is visible under every gate.
  auto ContentUnder = [&](const pdag::Pred *G) -> std::optional<const USR *> {
    std::vector<const USR *> Vis{VY->Ungated};
    for (const UMEGComponent &C : VY->Components) {
      if (C.Gate == G) {
        Vis.push_back(C.Content);
        continue;
      }
      if (!P.and2(C.Gate, G)->isFalse())
        return std::nullopt; // Overlapping, non-identical gate: give up.
    }
    return Ctx.unionN(std::move(Vis));
  };

  std::vector<const USR *> Parts;
  for (const UMEGComponent &C : VX->Components) {
    auto Vis = ContentUnder(C.Gate);
    if (!Vis)
      return nullptr;
    const USR *Inner = Op == USRKind::Subtract
                           ? Ctx.subtract(C.Content, *Vis)
                           : Ctx.intersect(C.Content, *Vis);
    Parts.push_back(Ctx.gate(C.Gate, Inner));
  }
  if (!VX->Ungated->isEmptySet()) {
    const USR *Rest = Op == USRKind::Subtract
                          ? Ctx.subtract(VX->Ungated, Y)
                          : Ctx.intersect(VX->Ungated, Y);
    Parts.push_back(Rest);
  }
  return Ctx.unionN(std::move(Parts));
}

} // namespace

const USR *usr::reshapeUMEG(USRContext &Ctx, const USR *S) {
  switch (S->getKind()) {
  case USRKind::Empty:
  case USRKind::Leaf:
    return S;
  case USRKind::Union: {
    std::vector<const USR *> Cs;
    for (const USR *C : cast<UnionUSR>(S)->getChildren())
      Cs.push_back(reshapeUMEG(Ctx, C));
    return Ctx.unionN(std::move(Cs));
  }
  case USRKind::Intersect:
  case USRKind::Subtract: {
    const auto *B = cast<BinaryUSR>(S);
    const USR *L = reshapeUMEG(Ctx, B->getLHS());
    const USR *R = reshapeUMEG(Ctx, B->getRHS());
    if (const USR *D = tryUMEGDistribute(Ctx, S->getKind(), L, R))
      return reshapeUMEG(Ctx, D);
    return B->isIntersect() ? Ctx.intersect(L, R) : Ctx.subtract(L, R);
  }
  case USRKind::Gate: {
    const auto *G = cast<GateUSR>(S);
    return Ctx.gate(G->getGate(), reshapeUMEG(Ctx, G->getChild()));
  }
  case USRKind::CallSite: {
    const auto *C = cast<CallSiteUSR>(S);
    return Ctx.callSite(C->getCallee(), reshapeUMEG(Ctx, C->getChild()));
  }
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(S);
    return Ctx.recur(R->getVar(), R->getLo(), R->getHi(),
                     reshapeUMEG(Ctx, R->getBody()));
  }
  }
  halo_unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Invariant overestimation (rule (1) of Fig. 5)
//===----------------------------------------------------------------------===//

std::optional<const USR *>
usr::invariantOverestimate(USRContext &Ctx, const USR *S, SymbolId Var,
                           const Expr *Lo, const Expr *Hi) {
  if (!S->dependsOn(Var))
    return S;
  sym::Context &Sym = Ctx.symCtx();

  switch (S->getKind()) {
  case USRKind::Empty:
    return S;
  case USRKind::Leaf: {
    // Widening a leaf over the variable's range is exactly aggregation.
    // When aggregation fails (non-affine offset), fall back to widening
    // the interval overestimate with range analysis — this covers the
    // monotone CIV-prefix-array offsets of Sec. 3.3.
    sym::RangeEnv Env;
    Env.bind(Var, Lo, Hi);
    lmad::LMADSet Out;
    for (const lmad::LMAD &L : cast<LeafUSR>(S)->getLMADs()) {
      auto A = lmad::aggregate(Sym, L, Var, Lo, Hi);
      if (A) {
        Out.push_back(*A);
        continue;
      }
      lmad::Interval IV = lmad::intervalOverestimate(Sym, L);
      auto LoB = sym::boundExpr(Sym, IV.Lo, Env, /*IsLower=*/true);
      auto HiB = sym::boundExpr(Sym, IV.Hi, Env, /*IsLower=*/false);
      if (!LoB || !HiB)
        return std::nullopt;
      Out.push_back(lmad::LMAD::makeStrided(
          Sym.intConst(1), Sym.sub(*HiB, *LoB), *LoB));
    }
    return Ctx.leaf(std::move(Out));
  }
  case USRKind::Union: {
    std::vector<const USR *> Cs;
    for (const USR *C : cast<UnionUSR>(S)->getChildren()) {
      auto O = invariantOverestimate(Ctx, C, Var, Lo, Hi);
      if (!O)
        return std::nullopt;
      Cs.push_back(*O);
    }
    return Ctx.unionN(std::move(Cs));
  }
  case USRKind::Intersect: {
    const auto *B = cast<BinaryUSR>(S);
    auto L = invariantOverestimate(Ctx, B->getLHS(), Var, Lo, Hi);
    auto R = invariantOverestimate(Ctx, B->getRHS(), Var, Lo, Hi);
    if (!L || !R)
      return std::nullopt;
    return Ctx.intersect(*L, *R);
  }
  case USRKind::Subtract: {
    // Overestimate: keep the subtrahend only when it is already invariant.
    const auto *B = cast<BinaryUSR>(S);
    auto L = invariantOverestimate(Ctx, B->getLHS(), Var, Lo, Hi);
    if (!L)
      return std::nullopt;
    if (!B->getRHS()->dependsOn(Var))
      return Ctx.subtract(*L, B->getRHS());
    return *L;
  }
  case USRKind::Gate: {
    // Loop-variant gates are filtered out (Sec. 3.1: "for example by
    // filtering out loop-variant gates").
    const auto *G = cast<GateUSR>(S);
    auto C = invariantOverestimate(Ctx, G->getChild(), Var, Lo, Hi);
    if (!C)
      return std::nullopt;
    if (G->getGate()->dependsOn(Var))
      return *C;
    return Ctx.gate(G->getGate(), *C);
  }
  case USRKind::CallSite: {
    const auto *C = cast<CallSiteUSR>(S);
    auto Inner = invariantOverestimate(Ctx, C->getChild(), Var, Lo, Hi);
    if (!Inner)
      return std::nullopt;
    return Ctx.callSite(C->getCallee(), *Inner);
  }
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(S);
    // Widen variant bounds over Var's range.
    sym::RangeEnv Env;
    Env.bind(Var, Lo, Hi);
    const Expr *NewLo = R->getLo();
    const Expr *NewHi = R->getHi();
    if (NewLo->dependsOn(Var)) {
      auto B = sym::boundExpr(Sym, NewLo, Env, /*IsLower=*/true);
      if (!B)
        return std::nullopt;
      NewLo = *B;
    }
    if (NewHi->dependsOn(Var)) {
      auto B = sym::boundExpr(Sym, NewHi, Env, /*IsLower=*/false);
      if (!B)
        return std::nullopt;
      NewHi = *B;
    }
    auto Body = invariantOverestimate(Ctx, R->getBody(), Var, Lo, Hi);
    if (!Body)
      return std::nullopt;
    return Ctx.recur(R->getVar(), NewLo, NewHi, *Body);
  }
  }
  halo_unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// BOUNDS-COMP stripping (Sec. 4)
//===----------------------------------------------------------------------===//

const USR *usr::stripForBounds(USRContext &Ctx, const USR *S) {
  switch (S->getKind()) {
  case USRKind::Empty:
  case USRKind::Leaf:
    return S;
  case USRKind::Union: {
    std::vector<const USR *> Cs;
    for (const USR *C : cast<UnionUSR>(S)->getChildren())
      Cs.push_back(stripForBounds(Ctx, C));
    return Ctx.unionN(std::move(Cs));
  }
  case USRKind::Intersect:
  case USRKind::Subtract:
    return stripForBounds(Ctx, cast<BinaryUSR>(S)->getLHS());
  case USRKind::Gate:
    return stripForBounds(Ctx, cast<GateUSR>(S)->getChild());
  case USRKind::CallSite: {
    const auto *C = cast<CallSiteUSR>(S);
    return Ctx.callSite(C->getCallee(), stripForBounds(Ctx, C->getChild()));
  }
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(S);
    return Ctx.recur(R->getVar(), R->getLo(), R->getHi(),
                     stripForBounds(Ctx, R->getBody()));
  }
  }
  halo_unreachable("covered switch");
}
