//===- usr/USRCompile.cpp - USR interval-run bytecode compiler ------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "usr/USRCompile.h"

#include "support/Error.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace halo;
using namespace halo::usr;

//===----------------------------------------------------------------------===//
// Run algebra
//===----------------------------------------------------------------------===//

namespace {

/// Canonical run vectors are sorted with strictly disjoint *ranges*
/// (out[i].Hi < out[i+1].Lo): sweepRuns below resolves every range
/// overlap, so expansion concatenates sorted and cardinality is the plain
/// sum of counts.
uint64_t runCount(const Run &R) {
  return static_cast<uint64_t>((R.Hi - R.Lo) / R.Stride + 1);
}

/// Appends \p R to canonical \p Out under the sweep precondition
/// R.Lo > Out.back().Hi (strictly disjoint ranges), coalescing when R
/// continues the last run's progression. Maintains \p Card (disjointness
/// makes the delta exactly R's count).
void appendCoalesce(RunVec &Out, Run R, uint64_t &Card) {
  if (R.Lo == R.Hi)
    R.Stride = 1;
  Card += runCount(R);
  if (Out.empty()) {
    Out.push_back(R);
    return;
  }
  Run &L = Out.back();
  if (L.Stride == R.Stride && R.Lo == L.Hi + L.Stride) {
    L.Hi = R.Hi;
    return;
  }
  if (R.Lo == R.Hi && R.Lo == L.Hi + L.Stride) {
    L.Hi = R.Lo;
    return;
  }
  if (L.Lo == L.Hi && R.Lo - L.Lo == R.Stride) {
    L.Stride = R.Stride;
    L.Hi = R.Hi;
    return;
  }
  if (L.Lo == L.Hi && R.Lo == R.Hi) {
    L.Stride = R.Lo - L.Lo;
    L.Hi = R.Lo;
    return;
  }
  Out.push_back(R);
}

/// Sweeps runs sorted by Lo into canonical form, resolving *clusters* —
/// maximal groups whose ranges transitively overlap — exactly: all
/// stride-1 runs chain into one interval, congruent equal-stride runs
/// into one progression, and genuinely interleaved strides fall back to
/// pointwise expansion of the cluster (never worse than the enumerating
/// interpreter; a single member over \p Cap already proves the union's
/// cardinality exceeds it). Cluster-at-a-time resolution is what keeps
/// the sweep sound: a fragmented long strided run can reach past the
/// next input's Lo, so pairwise last-run merging is not.
/// With \p Append set, Out is extended instead of rebuilt (requires
/// In.front().Lo > Out.back().Hi).
bool sweepRuns(const std::vector<Run> &In, RunVec &Out, uint64_t &Card,
               size_t Cap, std::vector<int64_t> &Pts, bool Append = false) {
  if (!Append) {
    Out.clear();
    Card = 0;
  }
  const size_t N = In.size();
  size_t I = 0;
  while (I < N) {
    size_t J = I + 1;
    int64_t MaxHi = In[I].Hi;
    const int64_t S0 = In[I].Stride;
    const int64_t Res0 = ((In[I].Lo % S0) + S0) % S0;
    bool AllS1 = S0 == 1;
    bool SameStride = true;
    while (J < N && In[J].Lo <= MaxHi) {
      MaxHi = std::max(MaxHi, In[J].Hi);
      AllS1 &= In[J].Stride == 1;
      SameStride &= In[J].Stride == S0 &&
                    ((In[J].Lo % S0) + S0) % S0 == Res0;
      ++J;
    }
    if (J == I + 1) {
      appendCoalesce(Out, In[I], Card);
    } else if (AllS1) {
      // Chained ranges cover [Lo, MaxHi] without gaps.
      appendCoalesce(Out, Run{In[I].Lo, MaxHi, 1}, Card);
    } else if (SameStride) {
      // Congruent progressions over gap-free chained ranges: one AP.
      appendCoalesce(Out, Run{In[I].Lo, MaxHi, S0}, Card);
    } else {
      uint64_t Tot = 0;
      for (size_t K = I; K < J; ++K) {
        const uint64_t C = runCount(In[K]);
        if (C > Cap)
          return false; // Union cardinality >= C > Cap.
        Tot += C;
      }
      Pts.clear();
      Pts.reserve(Tot);
      for (size_t K = I; K < J; ++K)
        for (int64_t P = In[K].Lo;; P += In[K].Stride) {
          Pts.push_back(P);
          if (P == In[K].Hi)
            break;
        }
      std::sort(Pts.begin(), Pts.end());
      Pts.erase(std::unique(Pts.begin(), Pts.end()), Pts.end());
      for (int64_t P : Pts)
        appendCoalesce(Out, Run{P, P, 1}, Card);
    }
    I = J;
  }
  return true;
}

/// Sorts \p Buf (if needed) and sweeps it into canonical \p Out.
bool canonicalizeRuns(std::vector<Run> &Buf, RunVec &Out, uint64_t &Card,
                      size_t Cap, std::vector<int64_t> &Pts) {
  bool Sorted = true;
  for (size_t I = 1; I < Buf.size(); ++I)
    if (Buf[I].Lo < Buf[I - 1].Lo) {
      Sorted = false;
      break;
    }
  if (!Sorted)
    std::sort(Buf.begin(), Buf.end(), [](const Run &A, const Run &B) {
      return A.Lo != B.Lo ? A.Lo < B.Lo : A.Hi < B.Hi;
    });
  return sweepRuns(Buf, Out, Card, Cap, Pts);
}

/// First point of \p X at or after \p P.
int64_t firstPointAtOrAfter(const Run &X, int64_t P) {
  if (P <= X.Lo)
    return X.Lo;
  int64_t K = (P - X.Lo + X.Stride - 1) / X.Stride;
  return X.Lo + K * X.Stride;
}

/// Galloping advance: first index >= BI with B[idx].Hi >= Lo. Canonical
/// vectors have strictly increasing Hi, so binary search applies; the hot
/// tiny-against-large Intersect (one write-first run against a cached
/// recurrence prefix) becomes O(log) per evaluation instead of a linear
/// rescan.
size_t advanceTo(const RunVec &B, size_t BI, int64_t Lo) {
  if (BI < B.size() && B[BI].Hi >= Lo)
    return BI;
  return static_cast<size_t>(
      std::lower_bound(B.begin() + static_cast<ptrdiff_t>(BI), B.end(), Lo,
                       [](const Run &R, int64_t V) { return R.Hi < V; }) -
      B.begin());
}

/// A, B canonical; Out receives their exact intersection. Appends are
/// strictly ascending and disjoint (windows of one A run against
/// successive B runs are disjoint, and A runs' ranges are), so the
/// coalescing append applies directly and the operation cannot fail.
/// Intersection commutes, so the sweep iterates the side with fewer runs
/// and gallops the other — the ubiquitous one-write-first-run against a
/// long cached recurrence prefix costs O(log |prefix|), whichever side
/// the canonicalized USR put it on.
void intersectRuns(const RunVec &A0, const RunVec &B0, RunVec &Out) {
  const RunVec &A = A0.size() <= B0.size() ? A0 : B0;
  const RunVec &B = A0.size() <= B0.size() ? B0 : A0;
  Out.clear();
  uint64_t Card = 0;
  size_t BI = 0;
  for (const Run &X : A) {
    BI = advanceTo(B, BI, X.Lo);
    for (size_t BJ = BI; BJ < B.size() && B[BJ].Lo <= X.Hi; ++BJ) {
      const Run &Y = B[BJ];
      const int64_t WLo = std::max(X.Lo, Y.Lo);
      const int64_t WHi = std::min(X.Hi, Y.Hi);
      if (X.Stride == 1 && Y.Stride == 1) {
        appendCoalesce(Out, Run{WLo, WHi, 1}, Card);
        continue;
      }
      // Pointwise over the sparser participant within the window.
      const int64_t FX = firstPointAtOrAfter(X, WLo);
      const int64_t FY = firstPointAtOrAfter(Y, WLo);
      const int64_t CX = FX > WHi ? 0 : (WHi - FX) / X.Stride + 1;
      const int64_t CY = FY > WHi ? 0 : (WHi - FY) / Y.Stride + 1;
      const Run &It = CX <= CY ? X : Y;
      const Run &Other = CX <= CY ? Y : X;
      for (int64_t P = firstPointAtOrAfter(It, WLo); P <= WHi;
           P += It.Stride)
        if (Other.contains(P))
          appendCoalesce(Out, Run{P, P, 1}, Card);
    }
  }
}

/// A, B canonical; Out receives A \\ B. Same disjoint-ascending append
/// argument as intersectRuns.
void subtractRuns(const RunVec &A, const RunVec &B, RunVec &Out) {
  Out.clear();
  uint64_t Card = 0;
  size_t BI = 0;
  for (const Run &X : A) {
    BI = advanceTo(B, BI, X.Lo);
    size_t BEnd = BI;
    bool AllStride1 = X.Stride == 1;
    while (BEnd < B.size() && B[BEnd].Lo <= X.Hi) {
      AllStride1 &= B[BEnd].Stride == 1;
      ++BEnd;
    }
    if (BEnd == BI) {
      appendCoalesce(Out, X, Card);
      continue;
    }
    if (AllStride1) {
      int64_t Cur = X.Lo;
      for (size_t BJ = BI; BJ < BEnd && Cur <= X.Hi; ++BJ) {
        const Run &Y = B[BJ];
        if (Y.Lo > Cur)
          appendCoalesce(Out, Run{Cur, std::min(X.Hi, Y.Lo - 1), 1}, Card);
        Cur = std::max(Cur, Y.Hi + 1);
      }
      if (Cur <= X.Hi)
        appendCoalesce(Out, Run{Cur, X.Hi, 1}, Card);
      continue;
    }
    // Pointwise fallback: strided interaction. Disjoint ranges mean the
    // first B run whose Hi reaches P is the only candidate containing P.
    size_t BP = BI;
    for (int64_t P = X.Lo; P <= X.Hi; P += X.Stride) {
      while (BP < B.size() && B[BP].Hi < P)
        ++BP;
      if (BP < B.size() && B[BP].Lo <= P && B[BP].contains(P))
        continue;
      appendCoalesce(Out, Run{P, P, 1}, Card);
    }
  }
}

uint64_t cardOf(const RunVec &V) {
  uint64_t N = 0;
  for (const Run &R : V)
    N += runCount(R);
  return N;
}

} // namespace

std::vector<int64_t> usr::expandRuns(const RunVec &Runs) {
  std::vector<int64_t> Out;
  Out.reserve(static_cast<size_t>(cardOf(Runs)));
  for (const Run &R : Runs)
    for (int64_t P = R.Lo;; P += R.Stride) {
      Out.push_back(P);
      if (P == R.Hi)
        break;
    }
  return Out;
}

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

namespace halo {
namespace usr {

class USRCompiler {
public:
  USRCompiler(const sym::Context &Ctx, CompiledUSR &Out,
              CompiledUSR::PredProvider Preds)
      : Ctx(Ctx), Out(Out),
        XB(Ctx, Out.XCode, Out.ScalarSlots, Out.ArraySlots),
        Preds(std::move(Preds)) {}

  /// True when lowering tripped a resource guard (a null gate predicate
  /// or an expression-layer cap); CompiledUSR::compile then discards the
  /// object.
  bool failed() const { return Failed || XB.exceeded(); }

  void compileRoot(const USR *S) {
    countRefs(S);
    collectRecurVars(S);
    compileNode(S, /*Deciding=*/true, /*AtRoot=*/true);
    Out.MainCodeEnd = here();
    emitSubBodies();
    // The parallel emptiness entry fans out only over a bare root
    // recurrence (CallSite wrappers are transparent and emit no code).
    if (Out.MainCodeEnd >= 1 &&
        Out.Code[0].Opcode == USRInstr::Op::Recur &&
        Out.Recurs[Out.Code[0].A].BodyEnd == Out.MainCodeEnd)
      Out.RootRecur = static_cast<int32_t>(Out.Code[0].A);
    Out.XMaxDepth = XB.maxStackDepth();
#ifndef NDEBUG
    // The exact-depth bound frames size XStack from must dominate every
    // expression range the evaluator can run.
    auto CheckRange = [&](uint32_t B, uint32_t E) {
      assert(pdag::exprCodeMaxDepth(Out.XCode.data(), B, E) <=
                 Out.XMaxDepth &&
             "expression range exceeds the precomputed frame bound");
      (void)B;
      (void)E;
    };
    for (const CompiledUSRLmad &L : Out.Lmads)
      CheckRange(L.OffsetBegin, L.OffsetEnd);
    for (const CompiledUSRDim &D : Out.Dims) {
      CheckRange(D.StrideBegin, D.StrideEnd);
      CheckRange(D.SpanBegin, D.SpanEnd);
    }
    for (const CompiledUSRRecur &R : Out.Recurs) {
      CheckRange(R.LoBegin, R.LoEnd);
      CheckRange(R.HiBegin, R.HiEnd);
    }
#endif
  }

private:
  uint32_t here() const { return static_cast<uint32_t>(Out.Code.size()); }

  uint32_t emit(USRInstr::Op Op, uint32_t A = 0, uint32_t B = 0,
                bool Deciding = false) {
    Out.Code.push_back(USRInstr{Op, A, B, Deciding ? uint8_t(1) : uint8_t(0)});
    return static_cast<uint32_t>(Out.Code.size() - 1);
  }

  void countRefs(const USR *S) {
    if (++RefCount[S] > 1)
      return;
    switch (S->getKind()) {
    case USRKind::Union:
      for (const USR *C : cast<UnionUSR>(S)->getChildren())
        countRefs(C);
      return;
    case USRKind::Intersect:
    case USRKind::Subtract:
      countRefs(cast<BinaryUSR>(S)->getLHS());
      countRefs(cast<BinaryUSR>(S)->getRHS());
      return;
    case USRKind::Gate:
      countRefs(cast<GateUSR>(S)->getChild());
      return;
    case USRKind::CallSite:
      countRefs(cast<CallSiteUSR>(S)->getChild());
      return;
    case USRKind::Recur:
      countRefs(cast<RecurUSR>(S)->getBody());
      return;
    default:
      return;
    }
  }

  void collectRecurVars(const USR *S) {
    if (!VarVisited.insert(S).second)
      return;
    switch (S->getKind()) {
    case USRKind::Union:
      for (const USR *C : cast<UnionUSR>(S)->getChildren())
        collectRecurVars(C);
      return;
    case USRKind::Intersect:
    case USRKind::Subtract:
      collectRecurVars(cast<BinaryUSR>(S)->getLHS());
      collectRecurVars(cast<BinaryUSR>(S)->getRHS());
      return;
    case USRKind::Gate:
      collectRecurVars(cast<GateUSR>(S)->getChild());
      return;
    case USRKind::CallSite:
      collectRecurVars(cast<CallSiteUSR>(S)->getChild());
      return;
    case USRKind::Recur:
      AllRecurVars.push_back(cast<RecurUSR>(S)->getVar());
      collectRecurVars(cast<RecurUSR>(S)->getBody());
      return;
    default:
      return;
    }
  }

  bool isSharedSub(const USR *S) const {
    switch (S->getKind()) {
    case USRKind::Union:
    case USRKind::Intersect:
    case USRKind::Subtract:
    case USRKind::Gate:
    case USRKind::CallSite:
    case USRKind::Recur: {
      auto It = RefCount.find(S);
      return It != RefCount.end() && It->second > 1;
    }
    default:
      return false; // Leaves compile to one table-backed instruction.
    }
  }

  /// Emits a reference to \p S: a multiply-referenced compound node
  /// becomes a Call to its once-compiled body (per polarity; expanding an
  /// interned DAG into a tree can blow code size up combinatorially).
  void emitNodeRef(const USR *S, bool Deciding, bool AtRoot) {
    if (!AtRoot && isSharedSub(S)) {
      auto Key = std::make_pair(S, Deciding);
      auto It = SubDescFor.find(Key);
      uint32_t Desc;
      if (It != SubDescFor.end()) {
        Desc = It->second;
      } else {
        Desc = static_cast<uint32_t>(Out.Calls.size());
        Out.Calls.emplace_back();
        SubDescFor.emplace(Key, Desc);
        PendingSubs.push_back(Key);
      }
      emit(USRInstr::Op::Call, Desc, 0, Deciding);
      return;
    }
    compileNode(S, Deciding, /*AtRoot=*/false);
  }

  void emitSubBodies() {
    while (!PendingSubs.empty()) {
      auto [S, Deciding] = PendingSubs.front();
      PendingSubs.pop_front();
      uint32_t Desc = SubDescFor.at({S, Deciding});
      uint32_t Begin = here();
      compileNode(S, Deciding, /*AtRoot=*/false);
      Out.Calls[Desc] = CompiledUSRCall{Begin, here()};
    }
  }

  uint32_t leafRange(const LeafUSR *L, uint32_t &End) {
    auto It = LeafRangeFor.find(L);
    if (It != LeafRangeFor.end()) {
      End = It->second.second;
      return It->second.first;
    }
    uint32_t Begin = static_cast<uint32_t>(Out.Lmads.size());
    for (const lmad::LMAD &M : L->getLMADs()) {
      CompiledUSRLmad CL;
      std::tie(CL.OffsetBegin, CL.OffsetEnd) = XB.compile(M.offset());
      CL.DimBegin = static_cast<uint32_t>(Out.Dims.size());
      for (const lmad::Dim &D : M.dims()) {
        CompiledUSRDim CD;
        std::tie(CD.StrideBegin, CD.StrideEnd) = XB.compile(D.Stride);
        std::tie(CD.SpanBegin, CD.SpanEnd) = XB.compile(D.Span);
        Out.Dims.push_back(CD);
      }
      CL.DimEnd = static_cast<uint32_t>(Out.Dims.size());
      Out.Lmads.push_back(CL);
    }
    End = static_cast<uint32_t>(Out.Lmads.size());
    LeafRangeFor.emplace(L, std::make_pair(Begin, End));
    return Begin;
  }

  uint32_t gateDesc(const pdag::Pred *G) {
    CompiledUSRGate D;
    auto It = PredFor.find(G);
    if (It != PredFor.end()) {
      D.Pred = It->second;
    } else if (Preds) {
      D.Pred = Preds(G);
      PredFor.emplace(G, D.Pred);
    } else {
      Out.OwnedPreds.push_back(pdag::CompiledPred::compile(G, Ctx));
      D.Pred = Out.OwnedPreds.back().get();
      PredFor.emplace(G, D.Pred);
    }
    // A gate whose predicate tripped predicate-lowering guards (null from
    // either provider path) fails the whole USR compile: the object would
    // dereference the null at evaluation time. CompiledUSR::compile
    // discards the object and callers demote to the interpreter.
    if (!D.Pred) {
      Failed = true;
      Out.Gates.push_back(D);
      return static_cast<uint32_t>(Out.Gates.size() - 1);
    }
    // Feeds: every recurrence variable the predicate reads is served from
    // our frame slot, which tracks exactly what sym::Bindings would
    // contain under the interpreter at this point (bound from B, written
    // per iteration, restored — including the interpreter's
    // leave-bound-when-originally-unbound behavior).
    D.FeedBegin = static_cast<uint32_t>(Out.GateFeeds.size());
    bool DependsOnVar = false;
    for (sym::SymbolId V : AllRecurVars)
      if (G->dependsOn(V)) {
        DependsOnVar = true;
        if (auto PS = D.Pred->scalarSlotIndex(V))
          Out.GateFeeds.push_back(CompiledUSRGateFeed{*PS, XB.scalarSlot(V)});
      }
    D.FeedEnd = static_cast<uint32_t>(Out.GateFeeds.size());
    D.Invariant = DependsOnVar ? 0 : 1;
    if (D.Invariant)
      D.MemoSlot = Out.NumGateMemoSlots++;
    Out.Gates.push_back(D);
    return static_cast<uint32_t>(Out.Gates.size() - 1);
  }

  void compileNode(const USR *S, bool Deciding, bool AtRoot) {
    switch (S->getKind()) {
    case USRKind::Empty:
      emit(USRInstr::Op::PushEmpty, 0, 0, Deciding);
      return;
    case USRKind::Leaf: {
      uint32_t End = 0;
      uint32_t Begin = leafRange(cast<LeafUSR>(S), End);
      emit(USRInstr::Op::Leaf, Begin, End, Deciding);
      return;
    }
    case USRKind::Union: {
      const auto &Cs = cast<UnionUSR>(S)->getChildren();
      for (const USR *C : Cs)
        emitNodeRef(C, Deciding, false);
      emit(USRInstr::Op::UnionN, static_cast<uint32_t>(Cs.size()), 0,
           Deciding);
      return;
    }
    case USRKind::Intersect:
    case USRKind::Subtract: {
      const auto *Bin = cast<BinaryUSR>(S);
      emitNodeRef(Bin->getLHS(), /*Deciding=*/false, false);
      uint32_t Skip = emit(USRInstr::Op::SkipIfEmpty);
      emitNodeRef(Bin->getRHS(), /*Deciding=*/false, false);
      emit(Bin->isIntersect() ? USRInstr::Op::Intersect
                              : USRInstr::Op::Subtract,
           0, 0, Deciding);
      Out.Code[Skip].A = here();
      return;
    }
    case USRKind::Gate: {
      const auto *G = cast<GateUSR>(S);
      uint32_t GIp = emit(USRInstr::Op::Gate, gateDesc(G->getGate()), 0,
                          Deciding);
      emitNodeRef(G->getChild(), Deciding, false);
      Out.Code[GIp].B = here();
      return;
    }
    case USRKind::CallSite:
      // Opaque for static reasoning only; evaluation passes through.
      emitNodeRef(cast<CallSiteUSR>(S)->getChild(), Deciding, AtRoot);
      return;
    case USRKind::Recur: {
      const auto *R = cast<RecurUSR>(S);
      uint32_t Desc = static_cast<uint32_t>(Out.Recurs.size());
      Out.Recurs.emplace_back();
      {
        CompiledUSRRecur &D = Out.Recurs[Desc];
        std::tie(D.LoBegin, D.LoEnd) = XB.compile(R->getLo());
        std::tie(D.HiBegin, D.HiEnd) = XB.compile(R->getHi());
        D.VarSlot = XB.scalarSlot(R->getVar());
        D.CacheSlot = Desc;
        // The prefix cache is sound only when the body reads no *other*
        // recurrence variable (then iteration k's set depends on the
        // bindings and k alone, so a grown [Lo, Hi] extends the cached
        // union). Checked against every recurrence variable of the whole
        // USR, which also covers code shared across call sites.
        bool Cacheable = true;
        for (sym::SymbolId V : AllRecurVars)
          if (V != R->getVar() && R->getBody()->dependsOn(V)) {
            Cacheable = false;
            break;
          }
        D.PrefixCacheable = Cacheable ? 1 : 0;
      }
      emit(USRInstr::Op::Recur, Desc, 0, Deciding);
      uint32_t BodyBegin = here();
      emitNodeRef(R->getBody(), Deciding, false);
      Out.Recurs[Desc].BodyBegin = BodyBegin;
      Out.Recurs[Desc].BodyEnd = here();
      return;
    }
    }
    halo_unreachable("covered switch");
  }

  const sym::Context &Ctx;
  CompiledUSR &Out;
  pdag::ExprCodeBuilder XB;
  CompiledUSR::PredProvider Preds;
  std::vector<sym::SymbolId> AllRecurVars;
  std::unordered_set<const USR *> VarVisited;
  std::unordered_map<const USR *, uint32_t> RefCount;
  std::unordered_map<const LeafUSR *, std::pair<uint32_t, uint32_t>>
      LeafRangeFor;
  std::unordered_map<const pdag::Pred *, const pdag::CompiledPred *> PredFor;
  std::map<std::pair<const USR *, bool>, uint32_t> SubDescFor;
  std::deque<std::pair<const USR *, bool>> PendingSubs;
  bool Failed = false; ///< a gate predicate failed lowering (see failed())
};

} // namespace usr
} // namespace halo

namespace {

/// Iterative (explicit-stack) pre-check that the USR tree and every leaf
/// expression fit the lowering caps. Runs *before* the recursive
/// USRCompiler so hostile nesting cannot overflow the C++ stack during
/// compilation. Gate predicates are checked by CompiledPred::compile
/// itself (a failed gate makes compile() below return null).
bool usrLoweringFits(const usr::USR *Root, unsigned Cap) {
  using usr::USRKind;
  auto ForEachChild = [](const usr::USR *N, auto F) {
    switch (N->getKind()) {
    case USRKind::Empty:
    case USRKind::Leaf:
      break;
    case USRKind::Union:
      for (const usr::USR *C : cast<usr::UnionUSR>(N)->getChildren())
        F(C);
      break;
    case USRKind::Intersect:
    case USRKind::Subtract:
      F(cast<usr::BinaryUSR>(N)->getLHS());
      F(cast<usr::BinaryUSR>(N)->getRHS());
      break;
    case USRKind::Gate:
      F(cast<usr::GateUSR>(N)->getChild());
      break;
    case USRKind::CallSite:
      F(cast<usr::CallSiteUSR>(N)->getChild());
      break;
    case USRKind::Recur:
      F(cast<usr::RecurUSR>(N)->getBody());
      break;
    }
  };
  std::unordered_map<const usr::USR *, unsigned> Memo;
  struct Frame {
    const usr::USR *S;
    bool ChildrenPushed;
  };
  std::vector<Frame> Stack{{Root, false}};
  while (!Stack.empty()) {
    Frame F = Stack.back();
    Stack.pop_back();
    if (Memo.count(F.S))
      continue;
    if (!F.ChildrenPushed) {
      Stack.push_back({F.S, true});
      ForEachChild(F.S, [&](const usr::USR *C) {
        if (!Memo.count(C))
          Stack.push_back({C, false});
      });
      continue;
    }
    unsigned MaxChild = 0;
    ForEachChild(F.S, [&](const usr::USR *C) {
      auto It = Memo.find(C);
      unsigned D = It == Memo.end() ? Cap + 1 : It->second;
      if (D > MaxChild)
        MaxChild = D;
    });
    Memo.emplace(F.S, MaxChild >= Cap ? Cap + 1 : MaxChild + 1);
  }
  if (Memo.at(Root) > Cap)
    return false;
  // Leaf expressions: LMAD components and recurrence bounds.
  std::vector<const usr::USR *> Walk{Root};
  std::unordered_set<const usr::USR *> Seen;
  auto ExprFits = [Cap](const sym::Expr *E) {
    return !E || pdag::exprNestDepth(E, Cap) <= Cap;
  };
  while (!Walk.empty()) {
    const usr::USR *N = Walk.back();
    Walk.pop_back();
    if (!Seen.insert(N).second)
      continue;
    if (const auto *L = dyn_cast<usr::LeafUSR>(N)) {
      for (const lmad::LMAD &M : L->getLMADs()) {
        if (!ExprFits(M.offset()))
          return false;
        for (const lmad::Dim &D : M.dims())
          if (!ExprFits(D.Stride) || !ExprFits(D.Span))
            return false;
      }
    } else if (const auto *R = dyn_cast<usr::RecurUSR>(N)) {
      if (!ExprFits(R->getLo()) || !ExprFits(R->getHi()))
        return false;
    }
    ForEachChild(N, [&](const usr::USR *C) { Walk.push_back(C); });
  }
  return true;
}

} // namespace

std::unique_ptr<CompiledUSR> CompiledUSR::compile(const USR *S,
                                                  const sym::Context &Ctx,
                                                  PredProvider Preds) {
  // Resource guards (graceful demotion contract, docs/FUZZING.md): a USR
  // too deep or too large to lower — or one of whose gate predicates
  // failed predicate lowering — returns null; callers fall back to the
  // reference interpreter (evalUSREmpty) and the governor counts the
  // demotion in ExecStats::GuardDemotions / USREvalStats::GuardDemotions.
  if (!usrLoweringFits(S, pdag::LoweringMaxNestDepth))
    return nullptr;
  std::unique_ptr<CompiledUSR> CU(new CompiledUSR());
  CU->Source = S;
  USRCompiler C(Ctx, *CU, std::move(Preds));
  C.compileRoot(S);
  if (C.failed() || CU->XCode.size() > pdag::LoweringMaxCodeLen)
    return nullptr;
  return CU;
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

/// Per-evaluation state: resolved symbol slots, the run-vector stack, the
/// invariant-gate memo, the recurrence prefix caches and reusable scratch
/// buffers. Copyable (the parallel emptiness evaluator copies the bound
/// frame per worker; the copies share the immutable ArrayBinding storage
/// behind the raw pointers).
struct CompiledUSR::Frame {
  std::vector<int64_t> ScalarVals;
  std::vector<uint8_t> ScalarBound;
  std::vector<const sym::ArrayBinding *> Arrays;
  std::vector<int64_t> XStack;
  std::vector<int8_t> GateMemo; // -1 unset, else a tri-state.
  /// Incremental prefix-recurrence cache (one per Recur descriptor): the
  /// canonical union over Var = Lo..Hi with its cardinality, valid for
  /// the current binding; growing Hi extends it instead of re-evaluating
  /// the prefix.
  struct RecurCache {
    bool Valid = false;
    int64_t Lo = 0, Hi = 0;
    uint64_t Card = 0;
    RunVec Runs;
  };
  std::vector<RecurCache> RecurCaches;
  /// Run-vector stack with buffer reuse across evaluations.
  std::vector<RunVec> RunStack;
  size_t RunSP = 0;
  /// Scratch run buffers (leaf emission, pending recurrence batches,
  /// merge temporaries), acquired/released stack-wise. A deque: leases
  /// stay referenced across nested evaluations that acquire more
  /// buffers, so growth must never relocate existing elements.
  std::deque<std::vector<Run>> BufPool;
  size_t BufTop = 0;
  /// Leaf-local scratch (never live across a nested evaluation).
  std::vector<std::pair<int64_t, int64_t>> DimVals; // (stride, count)
  std::vector<int64_t> Odo;
  std::vector<std::pair<uint32_t, int64_t>> Ovr; // gate slot overrides
  std::vector<int64_t> PtsScratch; // cluster expansion (non-reentrant use)
  /// Batch variant gate probes over recurrence sweeps (set per entry
  /// point from the caller's BlockGates; results are bit-identical either
  /// way, see CompiledUSR::batchableGate).
  bool BlockGates = true;
  USREvalStats Stats;
};

namespace {

/// Stack-wise scratch-buffer lease (exception-free code, but many early
/// returns: keep acquire/release balanced mechanically).
class BufLease {
public:
  explicit BufLease(CompiledUSR::Frame &F);
  ~BufLease();
  std::vector<Run> &get() { return *V; }

private:
  CompiledUSR::Frame &F;
  std::vector<Run> *V;
};

} // namespace

BufLease::BufLease(CompiledUSR::Frame &F) : F(F) {
  if (F.BufTop == F.BufPool.size())
    F.BufPool.emplace_back();
  V = &F.BufPool[F.BufTop++];
  V->clear();
}
BufLease::~BufLease() { --F.BufTop; }

bool CompiledUSR::bindFrame(Frame &F, const sym::Bindings &B) const {
  F.ScalarVals.assign(ScalarSlots.size(), 0);
  F.ScalarBound.assign(ScalarSlots.size(), 0);
  for (size_t I = 0; I < ScalarSlots.size(); ++I)
    if (auto V = B.scalar(ScalarSlots[I])) {
      F.ScalarVals[I] = *V;
      F.ScalarBound[I] = 1;
    }
  F.Arrays.resize(ArraySlots.size());
  for (size_t I = 0; I < ArraySlots.size(); ++I)
    F.Arrays[I] = B.array(ArraySlots[I]);
  F.XStack.resize(XMaxDepth);
  F.GateMemo.assign(NumGateMemoSlots, -1);
  F.RecurCaches.assign(Recurs.size(), Frame::RecurCache());
  F.RunSP = 0;
  F.BufTop = 0;
  return true;
}

std::optional<int64_t> CompiledUSR::evalExpr(uint32_t Begin, uint32_t End,
                                             Frame &F) const {
  return pdag::runExprCode(XCode.data(), Begin, End, F.ScalarVals.data(),
                           F.ScalarBound.data(), F.Arrays.data(),
                           F.XStack.data());
}

namespace {

RunVec &pushSlot(CompiledUSR::Frame &F) {
  if (F.RunSP == F.RunStack.size())
    F.RunStack.emplace_back();
  RunVec &V = F.RunStack[F.RunSP++];
  V.clear();
  return V;
}

/// Merges the pending raw runs into canonical \p Acc, maintaining \p
/// Card. Append-only extensions (the monotone recurrence shape) take the
/// O(new runs) path; anything else is a sort + linear two-way sweep.
bool compactInto(RunVec &Acc, uint64_t &Card, std::vector<Run> &Pend,
                 size_t Cap, CompiledUSR::Frame &F) {
  if (Pend.empty())
    return Card <= Cap;
  bool Sorted = true;
  for (size_t I = 1; I < Pend.size(); ++I)
    if (Pend[I].Lo < Pend[I - 1].Lo) {
      Sorted = false;
      break;
    }
  if (!Sorted)
    std::sort(Pend.begin(), Pend.end(), [](const Run &A, const Run &B) {
      return A.Lo != B.Lo ? A.Lo < B.Lo : A.Hi < B.Hi;
    });
  bool Ok;
  if (Acc.empty() || Pend.front().Lo > Acc.back().Hi) {
    Ok = sweepRuns(Pend, Acc, Card, Cap, F.PtsScratch, /*Append=*/true);
  } else {
    BufLease Tmp(F);
    std::vector<Run> &Merged = Tmp.get();
    Merged.reserve(Acc.size() + Pend.size());
    std::merge(Acc.begin(), Acc.end(), Pend.begin(), Pend.end(),
               std::back_inserter(Merged),
               [](const Run &A, const Run &B) { return A.Lo < B.Lo; });
    Ok = sweepRuns(Merged, Acc, Card, Cap, F.PtsScratch);
  }
  Pend.clear();
  return Ok && Card <= Cap;
}

} // namespace

CompiledUSR::Status CompiledUSR::evalLeaf(const USRInstr &I, Frame &F,
                                          size_t Cap,
                                          bool DecidingEmpty) const {
  ++F.Stats.NodesVisited;
  if (DecidingEmpty) {
    // Emptiness decides from point *counts* alone: no enumeration, no
    // cap. Mirrors lmad::enumerate's evaluation order (offset first,
    // then dims) so failure cases agree with the materializing path.
    for (uint32_t LI = I.A; LI != I.B; ++LI) {
      const CompiledUSRLmad &L = Lmads[LI];
      if (!evalExpr(L.OffsetBegin, L.OffsetEnd, F))
        return Status::Fail;
      bool Contributes = true;
      for (uint32_t DI = L.DimBegin; DI != L.DimEnd; ++DI) {
        auto St = evalExpr(Dims[DI].StrideBegin, Dims[DI].StrideEnd, F);
        auto Sp = evalExpr(Dims[DI].SpanBegin, Dims[DI].SpanEnd, F);
        if (!St || !Sp || *St < 0)
          return Status::Fail;
        if (*Sp < 0) { // Empty dimension: the LMAD denotes no points.
          Contributes = false;
          break;
        }
      }
      if (Contributes)
        return Status::NotEmpty;
    }
    pushSlot(F);
    return Status::Ok;
  }

  BufLease Lease(F);
  std::vector<Run> &Buf = Lease.get();
  size_t RawSum = 0;
  for (uint32_t LI = I.A; LI != I.B; ++LI) {
    const CompiledUSRLmad &L = Lmads[LI];
    auto Off = evalExpr(L.OffsetBegin, L.OffsetEnd, F);
    if (!Off)
      return Status::Fail;
    // Per-dimension evaluation mirrors lmad::enumerate exactly,
    // including its incremental per-LMAD cap check.
    F.DimVals.clear();
    size_t Total = 1;
    bool Empty = false;
    for (uint32_t DI = L.DimBegin; DI != L.DimEnd; ++DI) {
      auto St = evalExpr(Dims[DI].StrideBegin, Dims[DI].StrideEnd, F);
      auto Sp = evalExpr(Dims[DI].SpanBegin, Dims[DI].SpanEnd, F);
      if (!St || !Sp || *St < 0)
        return Status::Fail;
      if (*Sp < 0) {
        Empty = true;
        break;
      }
      int64_t Count = (*St == 0) ? 1 : (*Sp / *St + 1);
      F.DimVals.emplace_back(*St, Count);
      if (Total > Cap / static_cast<size_t>(Count))
        return Status::Fail;
      Total *= static_cast<size_t>(Count);
    }
    if (Empty)
      continue;
    RawSum += Total;

    // Choose the run dimension (max count; ties to the smaller stride)
    // and emit one run per combination of the remaining dimensions.
    size_t RD = F.DimVals.size();
    for (size_t D = 0; D < F.DimVals.size(); ++D)
      if (F.DimVals[D].second > 1 &&
          (RD == F.DimVals.size() ||
           F.DimVals[D].second > F.DimVals[RD].second ||
           (F.DimVals[D].second == F.DimVals[RD].second &&
            F.DimVals[D].first < F.DimVals[RD].first)))
        RD = D;
    if (RD == F.DimVals.size()) {
      Buf.push_back(Run{*Off, *Off, 1});
      continue;
    }
    const int64_t RStride = F.DimVals[RD].first;
    const int64_t RSpanEnd = (F.DimVals[RD].second - 1) * RStride;
    F.Odo.assign(F.DimVals.size(), 0);
    for (;;) {
      int64_t Base = *Off;
      for (size_t D = 0; D < F.DimVals.size(); ++D)
        if (D != RD)
          Base += F.Odo[D] * F.DimVals[D].first;
      Buf.push_back(Run{Base, Base + RSpanEnd, RStride});
      size_t D = 0;
      for (; D < F.DimVals.size(); ++D) {
        if (D == RD)
          continue;
        if (++F.Odo[D] < F.DimVals[D].second)
          break;
        F.Odo[D] = 0;
      }
      if (D == F.DimVals.size())
        break;
    }
  }
  if (RawSum > Cap)
    return Status::Fail;
  F.Stats.RunsProduced += Buf.size();
  F.Stats.PointsAvoided += RawSum - std::min(RawSum, Buf.size());
  RunVec &Top = pushSlot(F);
  uint64_t Card = 0;
  if (!canonicalizeRuns(Buf, Top, Card, Cap, F.PtsScratch))
    return Status::Fail;
  return Status::Ok;
}

uint8_t CompiledUSR::evalGate(const CompiledUSRGate &G, Frame &F,
                              const sym::Bindings &B) const {
  if (G.Invariant) {
    int8_t &M = F.GateMemo[G.MemoSlot];
    if (M < 0) {
      ++F.Stats.GateScalarEvals;
      auto V = G.Pred->eval(B);
      M = !V ? 2 : (*V ? 1 : 0);
    }
    return static_cast<uint8_t>(M);
  }
  F.Ovr.clear();
  for (uint32_t FI = G.FeedBegin; FI != G.FeedEnd; ++FI) {
    const CompiledUSRGateFeed &Feed = GateFeeds[FI];
    if (F.ScalarBound[Feed.OurSlot])
      F.Ovr.emplace_back(Feed.PredSlot, F.ScalarVals[Feed.OurSlot]);
  }
  ++F.Stats.GateScalarEvals;
  auto V = G.Pred->evalWithSlots(B, F.Ovr.data(), F.Ovr.size());
  return !V ? uint8_t(2) : (*V ? uint8_t(1) : uint8_t(0));
}

const CompiledUSRGate *
CompiledUSR::batchableGate(const CompiledUSRRecur &R,
                           uint32_t &PredVarSlot) const {
  if (R.BodyBegin >= R.BodyEnd ||
      Code[R.BodyBegin].Opcode != USRInstr::Op::Gate ||
      Code[R.BodyBegin].B != R.BodyEnd)
    return nullptr;
  const CompiledUSRGate &G = Gates[Code[R.BodyBegin].A];
  if (G.Invariant || !G.Pred || !G.Pred->blockableMain())
    return nullptr;
  bool HaveVar = false;
  for (uint32_t FI = G.FeedBegin; FI != G.FeedEnd; ++FI)
    if (GateFeeds[FI].OurSlot == R.VarSlot) {
      PredVarSlot = GateFeeds[FI].PredSlot;
      HaveVar = true;
      break;
    }
  if (!HaveVar)
    return nullptr;
  // Uniformity of the non-variable overrides across a block: no nested
  // recurrence inside the gated child may write another feed slot. (The
  // interpreter's leftover-binding quirk — an originally-unbound variable
  // keeps its last iteration value — would otherwise leak
  // iteration-varying values into what the block probe treats as
  // constants. Writes to R's own variable are fine: it was bound by this
  // sweep, so nested recurrences always restore it, and the probe feeds
  // it per lane anyway.)
  std::vector<std::pair<uint32_t, uint32_t>> Regions{
      {R.BodyBegin + 1, R.BodyEnd}};
  std::vector<uint8_t> CallSeen(Calls.size(), 0);
  while (!Regions.empty()) {
    auto [Begin, End] = Regions.back();
    Regions.pop_back();
    for (uint32_t Ip = Begin; Ip != End; ++Ip) {
      const USRInstr &I = Code[Ip];
      if (I.Opcode == USRInstr::Op::Recur) {
        uint32_t WSlot = Recurs[I.A].VarSlot;
        if (WSlot != R.VarSlot)
          for (uint32_t FI = G.FeedBegin; FI != G.FeedEnd; ++FI)
            if (GateFeeds[FI].OurSlot == WSlot)
              return nullptr;
      } else if (I.Opcode == USRInstr::Op::Call && !CallSeen[I.A]) {
        CallSeen[I.A] = 1;
        Regions.push_back({Calls[I.A].Begin, Calls[I.A].End});
      }
    }
  }
  return &G;
}

namespace {

/// Block-batched probe of a recurrence-guarding gate predicate: the
/// tri-states of up to pdag::ExprBlockWidth consecutive iteration values
/// are fetched with one predicate dispatch (one predicate-frame bind
/// amortized over the block), refilled as the ascending iteration sweep
/// crosses block boundaries. Each lane is bit-identical to the scalar
/// evalGate probe at that iteration (precondition:
/// CompiledUSR::batchableGate returned the gate).
class GateSweep {
public:
  GateSweep(const CompiledUSR::Frame &F, const CompiledUSRGate &G,
            const std::vector<CompiledUSRGateFeed> &Feeds,
            uint32_t OurVarSlot, uint32_t PredVarSlot)
      : G(G), PredVarSlot(PredVarSlot) {
    for (uint32_t FI = G.FeedBegin; FI != G.FeedEnd; ++FI) {
      const CompiledUSRGateFeed &Feed = Feeds[FI];
      if (Feed.OurSlot != OurVarSlot && F.ScalarBound[Feed.OurSlot])
        Ovr.emplace_back(Feed.PredSlot, F.ScalarVals[Feed.OurSlot]);
    }
  }

  /// Tri-state of the gate at iteration \p It (ascending queries only;
  /// \p Hi clamps the refill so no lane probes past the sweep's range).
  uint8_t at(int64_t It, int64_t Hi, CompiledUSR::Frame &F,
             const sym::Bindings &B) {
    if (Cnt == 0 || It >= Base + static_cast<int64_t>(Cnt)) {
      Base = It;
      Cnt = static_cast<unsigned>(
          std::min<int64_t>(pdag::ExprBlockWidth, Hi - It + 1));
      pdag::EvalStats PS;
      G.Pred->evalTriBlock(B, Ovr.data(), Ovr.size(), PredVarSlot, Base,
                           Cnt, Tri, &PS);
      ++F.Stats.GateBlockEvals;
      F.Stats.GateLanesPoisoned += PS.LanesPoisoned;
    }
    return Tri[It - Base];
  }

private:
  const CompiledUSRGate &G;
  uint32_t PredVarSlot;
  std::vector<std::pair<uint32_t, int64_t>> Ovr;
  uint8_t Tri[pdag::ExprBlockWidth] = {};
  int64_t Base = 0;
  unsigned Cnt = 0;
};

} // namespace

CompiledUSR::Status CompiledUSR::evalRecur(const USRInstr &I, uint32_t &Ip,
                                           uint32_t RegionEnd, Frame &F,
                                           const sym::Bindings &B,
                                           size_t Cap, bool EmptyMode) const {
  ++F.Stats.NodesVisited;
  const CompiledUSRRecur &R = Recurs[I.A];
  auto Lo = evalExpr(R.LoBegin, R.LoEnd, F);
  auto Hi = evalExpr(R.HiBegin, R.HiEnd, F);
  if (!Lo || !Hi)
    return Status::Fail;
  const int64_t SavedVal = F.ScalarVals[R.VarSlot];
  const uint8_t SavedBound = F.ScalarBound[R.VarSlot];
  // The interpreter restores the variable only when it was previously
  // bound (an originally-unbound variable stays bound to its last
  // iteration value); the frame mirrors sym::Bindings exactly, quirks
  // included, so gate feeds and sibling leaves agree on every input.
  auto RestoreVar = [&] {
    if (SavedBound) {
      F.ScalarVals[R.VarSlot] = SavedVal;
      F.ScalarBound[R.VarSlot] = 1;
    }
  };

  // Batched gate tier: when the body is a single variant gate over a
  // loop-free predicate, the iteration sweep probes it ExprBlockWidth
  // iterations per dispatch instead of one frame bind per iteration.
  uint32_t PredVarSlot = 0;
  const CompiledUSRGate *BG =
      F.BlockGates ? batchableGate(R, PredVarSlot) : nullptr;

  if (EmptyMode && I.Deciding) {
    // Emptiness of a union over iterations: every body must be empty; no
    // set is ever accumulated, so no cap applies here.
    Status St = Status::Ok;
    std::optional<GateSweep> Sweep;
    if (BG)
      Sweep.emplace(F, *BG, GateFeeds, R.VarSlot, PredVarSlot);
    for (int64_t It = *Lo; It <= *Hi; ++It) {
      F.ScalarVals[R.VarSlot] = It;
      F.ScalarBound[R.VarSlot] = 1;
      if (BG) {
        ++F.Stats.NodesVisited; // the Gate instruction, as run() counts it
        uint8_t Tri = Sweep->at(It, *Hi, F, B);
        if (Tri == 2) {
          St = Status::Fail;
          break;
        }
        if (Tri == 0) // Gate false: this iteration's set is empty.
          continue;
        St = run(R.BodyBegin + 1, R.BodyEnd, F, B, Cap, EmptyMode);
      } else {
        St = run(R.BodyBegin, R.BodyEnd, F, B, Cap, EmptyMode);
      }
      if (St != Status::Ok)
        break;
      --F.RunSP; // Discard the body's (empty) result.
    }
    RestoreVar();
    if (St != Status::Ok)
      return St;
    pushSlot(F);
    Ip = R.BodyEnd;
    return Status::Ok;
  }

  // Full-set mode: accumulate the union of the iteration sets, extending
  // the prefix cache when the bounds only grew (the Eq. 2 triangle).
  Frame::RecurCache *Cache =
      R.PrefixCacheable ? &F.RecurCaches[R.CacheSlot] : nullptr;
  BufLease OwnLease(F);
  BufLease PendLease(F);
  RunVec &Acc = Cache ? Cache->Runs : OwnLease.get();
  std::vector<Run> &Pend = PendLease.get();
  uint64_t Card = 0;
  int64_t Start = *Lo;
  if (Cache && Cache->Valid && Cache->Lo == *Lo && *Hi >= Cache->Hi) {
    Start = Cache->Hi + 1;
    Card = Cache->Card;
  } else {
    Acc.clear();
    if (Cache)
      Cache->Valid = false;
  }

  Status St = Status::Ok;
  std::optional<GateSweep> Sweep;
  if (BG && Start <= *Hi)
    Sweep.emplace(F, *BG, GateFeeds, R.VarSlot, PredVarSlot);
  for (int64_t It = Start; It <= *Hi; ++It) {
    F.ScalarVals[R.VarSlot] = It;
    F.ScalarBound[R.VarSlot] = 1;
    if (BG) {
      ++F.Stats.NodesVisited; // the Gate instruction, as run() counts it
      uint8_t Tri = Sweep->at(It, *Hi, F, B);
      if (Tri == 2) {
        St = Status::Fail;
        break;
      }
      if (Tri == 0) // Gate false: this iteration contributes nothing.
        continue;
      St = run(R.BodyBegin + 1, R.BodyEnd, F, B, Cap, EmptyMode);
    } else {
      St = run(R.BodyBegin, R.BodyEnd, F, B, Cap, EmptyMode);
    }
    if (St != Status::Ok)
      break;
    RunVec &V = F.RunStack[--F.RunSP];
    Pend.insert(Pend.end(), V.begin(), V.end());
    if (Pend.size() >= std::max<size_t>(Acc.size(), 64) &&
        !compactInto(Acc, Card, Pend, Cap, F)) {
      St = Status::Fail;
      break;
    }
  }
  RestoreVar();
  if (St == Status::Ok && !compactInto(Acc, Card, Pend, Cap, F))
    St = Status::Fail;
  if (St != Status::Ok) {
    if (Cache)
      Cache->Valid = false;
    return St;
  }
  if (Cache) {
    Cache->Valid = true;
    Cache->Lo = *Lo;
    Cache->Hi = std::max(*Hi, *Lo - 1);
    Cache->Card = Card;
  }

  // Fusion with an enclosing Intersect/Subtract: the consumer reads the
  // accumulated runs in place, so the per-iteration copy of a cached
  // prefix (O(|prefix|) per enclosing iteration — the quadratic term this
  // engine exists to remove) never happens. Two shapes, from the binary
  // node's emission [LHS][SkipIfEmpty -> X][RHS][op][X:]:
  //
  //  - this recurrence was the RHS: the op instruction directly follows,
  //  - this recurrence was the LHS (the canonicalized position in Eq. 2's
  //    `Prior ∩ WF(i)`): a SkipIfEmpty follows; short-circuit on an empty
  //    accumulation exactly like the stack path, else evaluate the RHS
  //    region and apply the op with the accumulation as left operand.
  if (R.BodyEnd < RegionEnd &&
      (Code[R.BodyEnd].Opcode == USRInstr::Op::Intersect ||
       Code[R.BodyEnd].Opcode == USRInstr::Op::Subtract)) {
    const USRInstr &Op = Code[R.BodyEnd];
    ++F.Stats.NodesVisited;
    RunVec &LHS = F.RunStack[F.RunSP - 1];
    BufLease Res(F);
    RunVec &Tmp = Res.get();
    if (Op.Opcode == USRInstr::Op::Intersect)
      intersectRuns(LHS, Acc, Tmp);
    else
      subtractRuns(LHS, Acc, Tmp);
    LHS.swap(Tmp);
    Ip = R.BodyEnd + 1;
    if (EmptyMode && Op.Deciding && !F.RunStack[F.RunSP - 1].empty())
      return Status::NotEmpty;
    return Status::Ok;
  }
  if (R.BodyEnd < RegionEnd &&
      Code[R.BodyEnd].Opcode == USRInstr::Op::SkipIfEmpty) {
    const USRInstr &Skip = Code[R.BodyEnd];
    const USRInstr &Op = Code[Skip.A - 1];
    if (Acc.empty()) { // LHS empty: the op's result is empty, RHS unrun.
      pushSlot(F);
      Ip = Skip.A;
      return Status::Ok;
    }
    Status RSt = run(R.BodyEnd + 1, Skip.A - 1, F, B, Cap, EmptyMode);
    if (RSt != Status::Ok)
      return RSt;
    ++F.Stats.NodesVisited;
    RunVec &RHS = F.RunStack[F.RunSP - 1];
    BufLease Res(F);
    RunVec &Tmp = Res.get();
    if (Op.Opcode == USRInstr::Op::Intersect)
      intersectRuns(Acc, RHS, Tmp);
    else
      subtractRuns(Acc, RHS, Tmp);
    RHS.swap(Tmp);
    Ip = Skip.A;
    if (EmptyMode && Op.Deciding && !F.RunStack[F.RunSP - 1].empty())
      return Status::NotEmpty;
    return Status::Ok;
  }

  RunVec &Top = pushSlot(F);
  Top.assign(Acc.begin(), Acc.end());
  Ip = R.BodyEnd;
  return Status::Ok;
}

CompiledUSR::Status CompiledUSR::run(uint32_t Begin, uint32_t End, Frame &F,
                                     const sym::Bindings &B, size_t Cap,
                                     bool EmptyMode) const {
  for (uint32_t Ip = Begin; Ip != End;) {
    const USRInstr &I = Code[Ip];
    switch (I.Opcode) {
    case USRInstr::Op::PushEmpty:
      ++F.Stats.NodesVisited;
      pushSlot(F);
      ++Ip;
      break;
    case USRInstr::Op::Leaf: {
      Status St = evalLeaf(I, F, Cap, EmptyMode && I.Deciding);
      if (St != Status::Ok)
        return St;
      ++Ip;
      break;
    }
    case USRInstr::Op::UnionN: {
      ++F.Stats.NodesVisited;
      BufLease Lease(F);
      std::vector<Run> &Buf = Lease.get();
      for (size_t C = F.RunSP - I.A; C < F.RunSP; ++C)
        Buf.insert(Buf.end(), F.RunStack[C].begin(), F.RunStack[C].end());
      F.RunSP -= I.A;
      RunVec &Top = pushSlot(F);
      uint64_t Card = 0;
      if (!canonicalizeRuns(Buf, Top, Card, Cap, F.PtsScratch) ||
          Card > Cap)
        return Status::Fail;
      if (EmptyMode && I.Deciding && !Top.empty())
        return Status::NotEmpty;
      ++Ip;
      break;
    }
    case USRInstr::Op::Intersect:
    case USRInstr::Op::Subtract: {
      ++F.Stats.NodesVisited;
      RunVec &RHS = F.RunStack[F.RunSP - 1];
      RunVec &LHS = F.RunStack[F.RunSP - 2];
      BufLease Res(F);
      RunVec &Tmp = Res.get();
      if (I.Opcode == USRInstr::Op::Intersect)
        intersectRuns(LHS, RHS, Tmp);
      else
        subtractRuns(LHS, RHS, Tmp);
      --F.RunSP;
      F.RunStack[F.RunSP - 1].swap(Tmp);
      if (EmptyMode && I.Deciding && !F.RunStack[F.RunSP - 1].empty())
        return Status::NotEmpty;
      ++Ip;
      break;
    }
    case USRInstr::Op::SkipIfEmpty:
      Ip = F.RunStack[F.RunSP - 1].empty() ? I.A : Ip + 1;
      break;
    case USRInstr::Op::Gate: {
      ++F.Stats.NodesVisited;
      uint8_t Tri = evalGate(Gates[I.A], F, B);
      if (Tri == 2)
        return Status::Fail;
      if (Tri == 0) {
        pushSlot(F);
        Ip = I.B;
        break;
      }
      ++Ip;
      break;
    }
    case USRInstr::Op::Recur: {
      Status St = evalRecur(I, Ip, End, F, B, Cap, EmptyMode);
      if (St != Status::Ok)
        return St;
      break;
    }
    case USRInstr::Op::Call: {
      ++F.Stats.NodesVisited;
      Status St = run(Calls[I.A].Begin, Calls[I.A].End, F, B, Cap,
                      EmptyMode);
      if (St != Status::Ok)
        return St;
      ++Ip;
      break;
    }
    }
  }
  return Status::Ok;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

/// Reusable per-thread frame: bindFrame() resizes with assign()/resize(),
/// so after warm-up repeated scratch evaluations allocate little. The
/// scratch paths bind on every call (so recurrence/gate caches never leak
/// across unrelated bindings or caps); cross-evaluation reuse is the
/// pooled frames' job.
CompiledUSR::Frame &CompiledUSR::scratchFrame() {
  thread_local Frame F;
  return F;
}

std::optional<bool> CompiledUSR::finishEmpty(Status St, Frame &F,
                                             USREvalStats *Stats) const {
  if (Stats)
    *Stats += F.Stats;
  switch (St) {
  case Status::NotEmpty:
    return false;
  case Status::Fail:
    return std::nullopt;
  case Status::Ok:
    break;
  }
  return F.RunStack[F.RunSP - 1].empty();
}

std::optional<bool> CompiledUSR::evalEmpty(const sym::Bindings &B, size_t Cap,
                                           USREvalStats *Stats,
                                           bool BlockGates) const {
  Frame &F = scratchFrame();
  F.Stats = USREvalStats();
  F.BlockGates = BlockGates;
  bindFrame(F, B);
  Status St = run(0, MainCodeEnd, F, B, Cap, /*EmptyMode=*/true);
  return finishEmpty(St, F, Stats);
}

std::optional<RunVec> CompiledUSR::evalRuns(const sym::Bindings &B,
                                            size_t Cap, USREvalStats *Stats,
                                            bool BlockGates) const {
  Frame &F = scratchFrame();
  F.Stats = USREvalStats();
  F.BlockGates = BlockGates;
  bindFrame(F, B);
  Status St = run(0, MainCodeEnd, F, B, Cap, /*EmptyMode=*/false);
  if (Stats)
    *Stats += F.Stats;
  if (St != Status::Ok)
    return std::nullopt;
  return std::move(F.RunStack[F.RunSP - 1]);
}

std::optional<std::vector<int64_t>>
CompiledUSR::evalPoints(const sym::Bindings &B, size_t Cap,
                        USREvalStats *Stats, bool BlockGates) const {
  auto Runs = evalRuns(B, Cap, Stats, BlockGates);
  if (!Runs)
    return std::nullopt;
  return expandRuns(*Runs);
}

//===----------------------------------------------------------------------===//
// Pooled frames (analyze-once / execute-many)
//===----------------------------------------------------------------------===//

CompiledUSR::PooledFrame::PooledFrame() = default;
CompiledUSR::PooledFrame::~PooledFrame() = default;
CompiledUSR::PooledFrame::PooledFrame(PooledFrame &&) noexcept = default;
CompiledUSR::PooledFrame &
CompiledUSR::PooledFrame::operator=(PooledFrame &&) noexcept = default;

bool CompiledUSR::bindPooled(PooledFrame &PF, const sym::Bindings &B) const {
  if (!PF.Main)
    PF.Main = std::make_unique<Frame>();
  const sym::BindingsStamp S = B.stamp();
  // Stamp equality guarantees B is the same live object, unmutated since
  // the frame was bound: slot values, array pointers, the invariant-gate
  // memo and the recurrence prefix caches all stay exact.
  if (PF.BoundTo == this && PF.Stamp == S)
    return true;
  bindFrame(*PF.Main, B);
  PF.BoundTo = this;
  PF.Stamp = S;
  PF.WorkersValid = false;
  return false;
}

std::optional<bool> CompiledUSR::evalEmptyPooled(PooledFrame &PF,
                                                 const sym::Bindings &B,
                                                 size_t Cap,
                                                 USREvalStats *Stats,
                                                 bool BlockGates) const {
  bindPooled(PF, B);
  Frame &F = *PF.Main;
  F.Stats = USREvalStats();
  F.BlockGates = BlockGates;
  F.RunSP = 0;
  F.BufTop = 0;
  Status St = run(0, MainCodeEnd, F, B, Cap, /*EmptyMode=*/true);
  return finishEmpty(St, F, Stats);
}

std::optional<bool>
CompiledUSR::evalEmptyParallel(PooledFrame &PF, const sym::Bindings &B,
                               ThreadPool &Pool, size_t Cap,
                               USREvalStats *Stats, int64_t MinParallelIters,
                               const support::CancelToken *Cancel,
                               bool BlockGates) const {
  if (support::stopRequested(Cancel))
    return std::nullopt; // Cancelled: no (cacheable) answer.
  if (RootRecur < 0 || Pool.numThreads() <= 1)
    return evalEmptyPooled(PF, B, Cap, Stats, BlockGates);
  bindPooled(PF, B);
  Frame &F = *PF.Main;
  F.Stats = USREvalStats();
  F.BlockGates = BlockGates;
  F.RunSP = 0;
  F.BufTop = 0;
  const CompiledUSRRecur &R = Recurs[static_cast<size_t>(RootRecur)];
  auto Lo = evalExpr(R.LoBegin, R.LoEnd, F);
  auto Hi = evalExpr(R.HiBegin, R.HiEnd, F);
  if (!Lo || !Hi) {
    if (Stats)
      *Stats += F.Stats;
    return std::nullopt;
  }
  if (*Lo > *Hi) {
    if (Stats)
      *Stats += F.Stats;
    return true;
  }
  const unsigned NT = Pool.numThreads();
  if (*Hi - *Lo + 1 < MinParallelIters * static_cast<int64_t>(NT)) {
    Status St = run(0, MainCodeEnd, F, B, Cap, /*EmptyMode=*/true);
    return finishEmpty(St, F, Stats);
  }

  // Pooled worker frames are copied from the bound main frame on (re)bind
  // and reused while the stamp is unchanged (their prefix caches and gate
  // memos stay warm per worker).
  if (PF.Workers.size() < NT) {
    PF.Workers.resize(NT);
    PF.WorkersValid = false;
  }
  if (!PF.WorkersValid || PF.WorkersBoundFor < NT) {
    for (unsigned W = 0; W < NT; ++W)
      PF.Workers[W] = F;
    PF.WorkersBoundFor = NT;
    PF.WorkersValid = true;
  }

  // Exact first-failure frontier (the parallelAllOf protocol shared with
  // the compiled predicates): a worker stops once its iteration lies past
  // the earliest known non-empty/failed iteration, so the merged result —
  // the outcome at the minimal recorded iteration — is identical to the
  // serial early-exit order, including which of "not empty" and failure
  // decides.
  std::atomic<int64_t> FirstBad{INT64_MAX};
  std::vector<Status> Outcome(NT, Status::Ok);
  std::vector<int64_t> BadAt(NT, INT64_MAX);
  std::vector<USREvalStats> WorkerStats(NT);

  // Batched gate tier for the fanned-out sweep (see evalRecur): block
  // refills clamp to the chunk, so chunk boundaries stay the exact
  // first-failure / cancellation check points.
  uint32_t PredVarSlot = 0;
  const CompiledUSRGate *BG =
      BlockGates ? batchableGate(R, PredVarSlot) : nullptr;

  Pool.parallelAllOf(
      *Lo, *Hi + 1,
      [&](int64_t BLo, int64_t BHi, unsigned W, std::atomic<bool> &) -> bool {
        Frame &FW = PF.Workers[W];
        FW.Stats = USREvalStats();
        FW.BlockGates = BlockGates;
        FW.RunSP = 0;
        FW.BufTop = 0;
        const int64_t SavedVal = FW.ScalarVals[R.VarSlot];
        const uint8_t SavedBound = FW.ScalarBound[R.VarSlot];
        std::optional<GateSweep> Sweep;
        if (BG)
          Sweep.emplace(FW, *BG, GateFeeds, R.VarSlot, PredVarSlot);
        bool Ok = true;
        for (int64_t It = BLo; It < BHi; ++It) {
          if (It > FirstBad.load(std::memory_order_relaxed))
            break;
          FW.ScalarVals[R.VarSlot] = It;
          FW.ScalarBound[R.VarSlot] = 1;
          Status St;
          if (BG) {
            ++FW.Stats.NodesVisited; // the Gate instruction
            uint8_t Tri = Sweep->at(It, BHi - 1, FW, B);
            if (Tri == 0) // Gate false: this iteration's set is empty.
              continue;
            St = Tri == 2 ? Status::Fail
                          : run(R.BodyBegin + 1, R.BodyEnd, FW, B, Cap,
                                /*EmptyMode=*/true);
          } else {
            St = run(R.BodyBegin, R.BodyEnd, FW, B, Cap,
                     /*EmptyMode=*/true);
          }
          if (St == Status::Ok) {
            --FW.RunSP; // Discard the body's (empty) result.
            continue;
          }
          Outcome[W] = St;
          BadAt[W] = It;
          int64_t Cur = FirstBad.load(std::memory_order_relaxed);
          while (It < Cur && !FirstBad.compare_exchange_weak(
                                 Cur, It, std::memory_order_relaxed)) {
          }
          Ok = false;
          break;
        }
        if (SavedBound) {
          FW.ScalarVals[R.VarSlot] = SavedVal;
          FW.ScalarBound[R.VarSlot] = 1;
        }
        WorkerStats[W] = FW.Stats;
        return Ok;
      },
      Cancel);

  USREvalStats Agg = F.Stats;
  for (unsigned W = 0; W < NT; ++W)
    Agg += WorkerStats[W];
  if (Stats)
    *Stats += Agg;

  // Cancellation may have suppressed whole blocks, in which case the
  // empty BadAt frontier would read as "every iteration empty" — a wrong
  // (and memoizable) answer. A fired token therefore yields nullopt.
  if (support::stopRequested(Cancel))
    return std::nullopt;

  int64_t Best = INT64_MAX;
  Status Decided = Status::Ok;
  for (unsigned W = 0; W < NT; ++W)
    if (BadAt[W] < Best) {
      Best = BadAt[W];
      Decided = Outcome[W];
    }
  if (Decided == Status::Fail)
    return std::nullopt;
  if (Decided == Status::NotEmpty)
    return false;
  return true;
}
