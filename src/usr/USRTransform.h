//===- usr/USRTransform.h - USR reshaping & overestimates ------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The enabling USR transformations of Sec. 3.4 and the overestimation
/// machinery the factorization rules rely on:
///
///  - UMEG preservation (Fig. 8b): when subtracting/intersecting summaries
///    whose shapes are compatible unions of mutually exclusive gates, the
///    operation distributes *inside* each gate, keeping the gated structure
///    that predicate extraction pattern-matches (decisive for zeusmp's
///    TRANX2_DO2100 and calculix).
///    (The dual Fig. 8a rule — reassociating repeated subtraction — is
///    implemented directly in USRContext::subtract and can be toggled for
///    ablation.)
///
///  - Loop-invariant overestimation (rule (1) of Fig. 5): a superset of S
///    that does not mention the given loop variable, built by aggregating
///    leaf LMADs over the variable's range, dropping loop-variant gates,
///    and widening recurrence bounds. `S' superset-of S`, so
///    `S' disjoint T  ==>  S disjoint T`.
///
///  - BOUNDS-COMP stripping (Sec. 4, Fig. 7a): an overestimate containing
///    only union/leaf/recurrence/call nodes, suitable for cheap parallel
///    min/max evaluation of the touched-index bounds of a reduction array.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_USR_USRTRANSFORM_H
#define HALO_USR_USRTRANSFORM_H

#include "usr/USR.h"

#include <optional>

namespace halo {
namespace usr {

/// One (gate, content) component of a union-of-mutually-exclusive-gates.
struct UMEGComponent {
  const pdag::Pred *Gate;
  const USR *Content;
};

/// Structural view of S as `U gi#Si  u  Ungated` with pairwise mutually
/// exclusive gates (proved via the predicate algebra: gi and gj folds to
/// false). Returns nullopt when S has no such shape.
struct UMEGView {
  std::vector<UMEGComponent> Components;
  const USR *Ungated;
};
std::optional<UMEGView> viewUMEG(USRContext &Ctx, const USR *S);

/// Applies the UMEG-preserving distribution bottom-up wherever the operand
/// shapes are compatible; other nodes are rebuilt unchanged. The result is
/// semantically equal to the input.
const USR *reshapeUMEG(USRContext &Ctx, const USR *S);

/// Overestimate of \p S invariant in \p Var, assuming Var ranges over
/// [Lo, Hi] (rule (1) of Fig. 5). Returns nullopt when some component
/// cannot be widened.
std::optional<const USR *> invariantOverestimate(USRContext &Ctx,
                                                 const USR *S,
                                                 sym::SymbolId Var,
                                                 const sym::Expr *Lo,
                                                 const sym::Expr *Hi);

/// BOUNDS-COMP overestimate: drops subtraction/intersection right operands
/// and gates so only union / leaf / recurrence / call-site nodes remain.
const USR *stripForBounds(USRContext &Ctx, const USR *S);

} // namespace usr
} // namespace halo

#endif // HALO_USR_USRTRANSFORM_H
