//===- usr/USREval.h - Exact runtime evaluation of USRs --------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates a USR to a concrete, sorted set of array offsets under given
/// bindings. This serves two roles:
///
///  1. Reference semantics — every property test of the factorization
///     algorithm checks `F(S) true  ==>  evalUSR(S) empty` against this
///     evaluator.
///  2. The paper's *exact* runtime test (Sec. 2.2 / Sec. 5): when the whole
///     predicate cascade fails, independence can still be proven by
///     evaluating the independence USR directly (optionally hoisted and
///     memoized, the HOIST-USR technique); the rt module wraps this.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_USR_USREVAL_H
#define HALO_USR_USREVAL_H

#include "usr/USR.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace halo {
namespace usr {

/// Cost accounting for the RTov measurements.
struct USREvalStats {
  uint64_t NodesVisited = 0;
  uint64_t PointsMaterialized = 0;
};

/// Evaluates \p S to the sorted, deduplicated set of offsets it denotes.
/// Returns nullopt when a symbol is unbound, an array access is out of
/// bounds, or the set exceeds \p Cap points.
std::optional<std::vector<int64_t>>
evalUSR(const USR *S, sym::Bindings &B, size_t Cap = 1u << 22,
        USREvalStats *Stats = nullptr);

/// Convenience emptiness test: true iff the set evaluates to empty.
std::optional<bool> evalUSREmpty(const USR *S, sym::Bindings &B,
                                 size_t Cap = 1u << 22,
                                 USREvalStats *Stats = nullptr);

} // namespace usr
} // namespace halo

#endif // HALO_USR_USREVAL_H
