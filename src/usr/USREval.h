//===- usr/USREval.h - Exact runtime evaluation of USRs --------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates a USR to a concrete, sorted set of array offsets under given
/// bindings. This serves two roles:
///
///  1. Reference semantics — every property test of the factorization
///     algorithm checks `F(S) true  ==>  evalUSR(S) empty` against this
///     evaluator.
///  2. The paper's *exact* runtime test (Sec. 2.2 / Sec. 5): when the whole
///     predicate cascade fails, independence can still be proven by
///     evaluating the independence USR directly (optionally hoisted and
///     memoized, the HOIST-USR technique); the rt module wraps this.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_USR_USREVAL_H
#define HALO_USR_USREVAL_H

#include "usr/USR.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace halo {
namespace usr {

/// Cost accounting for the RTov measurements. Shared by this reference
/// interpreter and the interval-run bytecode engine (usr/USRCompile.h) so
/// callers can aggregate either path.
struct USREvalStats {
  uint64_t NodesVisited = 0;
  uint64_t PointsMaterialized = 0;
  /// Interval runs produced by compiled leaf evaluation (the compiled
  /// engine's unit of work; the interpreter reports 0).
  uint64_t RunsProduced = 0;
  /// Points the produced runs denote minus the runs it took to represent
  /// them — the enumeration work the run representation avoided relative
  /// to this point-materializing interpreter.
  uint64_t PointsAvoided = 0;
  /// Gate-predicate dispatches served by the block tier: one dispatch
  /// probes up to pdag::ExprBlockWidth consecutive recurrence iterations
  /// with a single predicate-frame bind (compiled engine only).
  uint64_t GateBlockEvals = 0;
  /// Gate-predicate dispatches that ran one iteration at a time (invariant
  /// gates on a memo miss, non-batchable recurrence shapes, or block gate
  /// evaluation off).
  uint64_t GateScalarEvals = 0;
  /// Block gate lanes that hit an unbound scalar or out-of-bounds read and
  /// degraded (that lane only) to the conservative-unknown tri-state.
  uint64_t GateLanesPoisoned = 0;
  /// Exact-test evaluations that fell back to this reference interpreter
  /// because CompiledUSR lowering tripped a resource guard (depth or
  /// bytecode-size cap — see pdag/ExprCode.h); bumped by the rt layer's
  /// demotion path, never by the interpreter itself.
  uint64_t GuardDemotions = 0;

  USREvalStats &operator+=(const USREvalStats &O) {
    NodesVisited += O.NodesVisited;
    PointsMaterialized += O.PointsMaterialized;
    RunsProduced += O.RunsProduced;
    PointsAvoided += O.PointsAvoided;
    GateBlockEvals += O.GateBlockEvals;
    GateScalarEvals += O.GateScalarEvals;
    GateLanesPoisoned += O.GateLanesPoisoned;
    GuardDemotions += O.GuardDemotions;
    return *this;
  }
};

/// Evaluates \p S to the sorted, deduplicated set of offsets it denotes.
/// Returns nullopt when a symbol is unbound, an array access is out of
/// bounds, or the set exceeds \p Cap points.
std::optional<std::vector<int64_t>>
evalUSR(const USR *S, sym::Bindings &B, size_t Cap = 1u << 22,
        USREvalStats *Stats = nullptr);

/// Emptiness test: true iff the set evaluates to empty. Short-circuits:
/// any provably nonempty contribution at union polarity (a leaf with a
/// positive point count, a nonempty recurrence iteration) decides "not
/// empty" immediately — before materializing anything and before the \p
/// Cap can trigger — since a superset of a nonempty set is nonempty under
/// every extension of the bindings. nullopt only when evaluation fails
/// (unbound symbol, out-of-bounds read, cap exceeded in a sub-evaluation
/// that must be materialized, e.g. an Intersect operand) without earlier
/// nonemptiness evidence.
std::optional<bool> evalUSREmpty(const USR *S, sym::Bindings &B,
                                 size_t Cap = 1u << 22,
                                 USREvalStats *Stats = nullptr);

} // namespace usr
} // namespace halo

#endif // HALO_USR_USREVAL_H
