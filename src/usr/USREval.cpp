//===- usr/USREval.cpp - Exact runtime evaluation of USRs -----------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "usr/USREval.h"

#include "pdag/PredEval.h"
#include "support/Error.h"

#include <algorithm>

using namespace halo;
using namespace halo::usr;

namespace {

using PointSet = std::vector<int64_t>; // Sorted, unique.

void normalize(PointSet &S) {
  std::sort(S.begin(), S.end());
  S.erase(std::unique(S.begin(), S.end()), S.end());
}

PointSet setUnion(const PointSet &A, const PointSet &B) {
  PointSet Out;
  Out.reserve(A.size() + B.size());
  std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                 std::back_inserter(Out));
  return Out;
}

PointSet setIntersect(const PointSet &A, const PointSet &B) {
  PointSet Out;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::back_inserter(Out));
  return Out;
}

PointSet setSubtract(const PointSet &A, const PointSet &B) {
  PointSet Out;
  std::set_difference(A.begin(), A.end(), B.begin(), B.end(),
                      std::back_inserter(Out));
  return Out;
}

std::optional<PointSet> evalImpl(const USR *S, sym::Bindings &B, size_t Cap,
                                 USREvalStats *Stats) {
  if (Stats)
    ++Stats->NodesVisited;
  switch (S->getKind()) {
  case USRKind::Empty:
    return PointSet{};
  case USRKind::Leaf: {
    PointSet Out;
    for (const lmad::LMAD &L : cast<LeafUSR>(S)->getLMADs())
      if (!lmad::enumerate(L, B, Out, Cap))
        return std::nullopt;
    if (Out.size() > Cap)
      return std::nullopt;
    normalize(Out);
    if (Stats)
      Stats->PointsMaterialized += Out.size();
    return Out;
  }
  case USRKind::Union: {
    PointSet Acc;
    for (const USR *C : cast<UnionUSR>(S)->getChildren()) {
      auto V = evalImpl(C, B, Cap, Stats);
      if (!V)
        return std::nullopt;
      Acc = setUnion(Acc, *V);
      if (Acc.size() > Cap)
        return std::nullopt;
    }
    return Acc;
  }
  case USRKind::Intersect:
  case USRKind::Subtract: {
    const auto *Bin = cast<BinaryUSR>(S);
    auto L = evalImpl(Bin->getLHS(), B, Cap, Stats);
    if (!L)
      return std::nullopt;
    if (L->empty())
      return PointSet{};
    auto R = evalImpl(Bin->getRHS(), B, Cap, Stats);
    if (!R)
      return std::nullopt;
    return Bin->isIntersect() ? setIntersect(*L, *R) : setSubtract(*L, *R);
  }
  case USRKind::Gate: {
    const auto *G = cast<GateUSR>(S);
    auto Cond = pdag::tryEvalPred(G->getGate(), B);
    if (!Cond)
      return std::nullopt;
    if (!*Cond)
      return PointSet{};
    return evalImpl(G->getChild(), B, Cap, Stats);
  }
  case USRKind::CallSite:
    return evalImpl(cast<CallSiteUSR>(S)->getChild(), B, Cap, Stats);
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(S);
    auto Lo = sym::tryEval(R->getLo(), B);
    auto Hi = sym::tryEval(R->getHi(), B);
    if (!Lo || !Hi)
      return std::nullopt;
    auto Saved = B.scalar(R->getVar());
    PointSet Acc;
    std::optional<PointSet> Result = PointSet{};
    for (int64_t I = *Lo; I <= *Hi; ++I) {
      B.setScalar(R->getVar(), I);
      auto V = evalImpl(R->getBody(), B, Cap, Stats);
      if (!V) {
        Result = std::nullopt;
        break;
      }
      Acc = setUnion(Acc, *V);
      if (Acc.size() > Cap) {
        Result = std::nullopt;
        break;
      }
    }
    if (Saved)
      B.setScalar(R->getVar(), *Saved);
    if (!Result)
      return std::nullopt;
    return Acc;
  }
  }
  halo_unreachable("covered switch");
}

} // namespace

std::optional<std::vector<int64_t>> usr::evalUSR(const USR *S,
                                                 sym::Bindings &B, size_t Cap,
                                                 USREvalStats *Stats) {
  return evalImpl(S, B, Cap, Stats);
}

std::optional<bool> usr::evalUSREmpty(const USR *S, sym::Bindings &B,
                                      size_t Cap, USREvalStats *Stats) {
  auto V = evalImpl(S, B, Cap, Stats);
  if (!V)
    return std::nullopt;
  return V->empty();
}
