//===- usr/USREval.cpp - Exact runtime evaluation of USRs -----------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "usr/USREval.h"

#include "pdag/PredEval.h"
#include "support/Error.h"

#include <algorithm>

using namespace halo;
using namespace halo::usr;

namespace {

using PointSet = std::vector<int64_t>; // Sorted, unique.

void normalize(PointSet &S) {
  std::sort(S.begin(), S.end());
  S.erase(std::unique(S.begin(), S.end()), S.end());
}

PointSet setIntersect(const PointSet &A, const PointSet &B) {
  PointSet Out;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::back_inserter(Out));
  return Out;
}

PointSet setSubtract(const PointSet &A, const PointSet &B) {
  PointSet Out;
  std::set_difference(A.begin(), A.end(), B.begin(), B.end(),
                      std::back_inserter(Out));
  return Out;
}

/// Deduplicating accumulator for Union/Recur results: child sets are
/// buffered and folded in O(T log T) batches (sort-once + unique) instead
/// of the former `Acc = setUnion(Acc, *V)` per child, which re-walked the
/// whole accumulated set per iteration (quadratic over a recurrence).
/// Compaction triggers once the pending raw size reaches the accumulated
/// size, so total work stays linearithmic in the points seen. The Cap
/// check moves from per-child prefixes to compaction points: the
/// deduplicated prefix cardinality is monotone in the number of children,
/// so "some prefix exceeds Cap" and "the compacted set exceeds Cap" fail
/// on exactly the same inputs.
class SetAccumulator {
public:
  /// Folds \p V in; false when the deduplicated cardinality exceeds Cap.
  bool add(PointSet V, size_t Cap) {
    PendingRaw += V.size();
    Pending.push_back(std::move(V));
    if (PendingRaw >= std::max<size_t>(Acc.size(), 1024))
      return compact(Cap);
    return true;
  }

  /// Final compaction; nullopt when the set exceeds Cap.
  std::optional<PointSet> take(size_t Cap) {
    if (!compact(Cap))
      return std::nullopt;
    return std::move(Acc);
  }

private:
  bool compact(size_t Cap) {
    if (!Pending.empty()) {
      bool Sorted = true;
      Acc.reserve(Acc.size() + PendingRaw);
      for (PointSet &P : Pending) {
        if (!P.empty() && !Acc.empty() && Acc.back() > P.front())
          Sorted = false;
        Acc.insert(Acc.end(), P.begin(), P.end());
      }
      // Recurrences over monotone data append in order: the concatenation
      // is already sorted and the sort is skipped.
      if (!Sorted)
        std::sort(Acc.begin(), Acc.end());
      Acc.erase(std::unique(Acc.begin(), Acc.end()), Acc.end());
      Pending.clear();
      PendingRaw = 0;
    }
    return Acc.size() <= Cap;
  }

  PointSet Acc;
  std::vector<PointSet> Pending;
  size_t PendingRaw = 0;
};

std::optional<PointSet> evalImpl(const USR *S, sym::Bindings &B, size_t Cap,
                                 USREvalStats *Stats) {
  if (Stats)
    ++Stats->NodesVisited;
  switch (S->getKind()) {
  case USRKind::Empty:
    return PointSet{};
  case USRKind::Leaf: {
    PointSet Out;
    for (const lmad::LMAD &L : cast<LeafUSR>(S)->getLMADs())
      if (!lmad::enumerate(L, B, Out, Cap))
        return std::nullopt;
    if (Out.size() > Cap)
      return std::nullopt;
    normalize(Out);
    if (Stats)
      Stats->PointsMaterialized += Out.size();
    return Out;
  }
  case USRKind::Union: {
    SetAccumulator Acc;
    for (const USR *C : cast<UnionUSR>(S)->getChildren()) {
      auto V = evalImpl(C, B, Cap, Stats);
      if (!V)
        return std::nullopt;
      if (!Acc.add(std::move(*V), Cap))
        return std::nullopt;
    }
    return Acc.take(Cap);
  }
  case USRKind::Intersect:
  case USRKind::Subtract: {
    const auto *Bin = cast<BinaryUSR>(S);
    auto L = evalImpl(Bin->getLHS(), B, Cap, Stats);
    if (!L)
      return std::nullopt;
    if (L->empty())
      return PointSet{};
    auto R = evalImpl(Bin->getRHS(), B, Cap, Stats);
    if (!R)
      return std::nullopt;
    return Bin->isIntersect() ? setIntersect(*L, *R) : setSubtract(*L, *R);
  }
  case USRKind::Gate: {
    const auto *G = cast<GateUSR>(S);
    auto Cond = pdag::tryEvalPred(G->getGate(), B);
    if (!Cond)
      return std::nullopt;
    if (!*Cond)
      return PointSet{};
    return evalImpl(G->getChild(), B, Cap, Stats);
  }
  case USRKind::CallSite:
    return evalImpl(cast<CallSiteUSR>(S)->getChild(), B, Cap, Stats);
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(S);
    auto Lo = sym::tryEval(R->getLo(), B);
    auto Hi = sym::tryEval(R->getHi(), B);
    if (!Lo || !Hi)
      return std::nullopt;
    auto Saved = B.scalar(R->getVar());
    SetAccumulator Acc;
    bool Ok = true;
    for (int64_t I = *Lo; I <= *Hi; ++I) {
      B.setScalar(R->getVar(), I);
      auto V = evalImpl(R->getBody(), B, Cap, Stats);
      if (!V || !Acc.add(std::move(*V), Cap)) {
        Ok = false;
        break;
      }
    }
    if (Saved)
      B.setScalar(R->getVar(), *Saved);
    if (!Ok)
      return std::nullopt;
    return Acc.take(Cap);
  }
  }
  halo_unreachable("covered switch");
}

/// The emptiness-only walk. Every node here sits at *union polarity*: its
/// nonemptiness implies the root set is nonempty (the root is reached
/// through Union children, Gate/CallSite bodies and Recur iterations
/// only), so a positive point count anywhere decides "not empty" without
/// materializing a single offset and without any cap. Intersect/Subtract
/// operands do not have that property — their operand sets must be
/// materialized — so those sub-evaluations go through the full (capped)
/// evaluator. The compiled engine (usr/USRCompile.h) implements this walk
/// over interval runs with the same traversal order, so the two agree on
/// every input, including which of nullopt / "not empty" wins when both a
/// failure and nonemptiness evidence exist (first in traversal order
/// wins).
std::optional<bool> emptyImpl(const USR *S, sym::Bindings &B, size_t Cap,
                              USREvalStats *Stats) {
  if (Stats)
    ++Stats->NodesVisited;
  switch (S->getKind()) {
  case USRKind::Empty:
    return true;
  case USRKind::Leaf: {
    // Mirrors lmad::enumerate's evaluation order (offset, then dims) so
    // failure cases agree with the materializing path; only the point
    // count matters, so nothing is enumerated and no cap applies.
    for (const lmad::LMAD &L : cast<LeafUSR>(S)->getLMADs()) {
      if (!sym::tryEval(L.offset(), B))
        return std::nullopt;
      bool Contributes = true;
      for (const lmad::Dim &D : L.dims()) {
        auto St = sym::tryEval(D.Stride, B);
        auto Sp = sym::tryEval(D.Span, B);
        if (!St || !Sp || *St < 0)
          return std::nullopt;
        if (*Sp < 0) { // Empty dimension: the LMAD denotes no points.
          Contributes = false;
          break;
        }
      }
      if (Contributes)
        return false;
    }
    return true;
  }
  case USRKind::Union: {
    for (const USR *C : cast<UnionUSR>(S)->getChildren()) {
      auto R = emptyImpl(C, B, Cap, Stats);
      if (!R || !*R)
        return R;
    }
    return true;
  }
  case USRKind::Intersect:
  case USRKind::Subtract: {
    auto V = evalImpl(S, B, Cap, Stats);
    if (!V)
      return std::nullopt;
    return V->empty();
  }
  case USRKind::Gate: {
    const auto *G = cast<GateUSR>(S);
    auto Cond = pdag::tryEvalPred(G->getGate(), B);
    if (!Cond)
      return std::nullopt;
    if (!*Cond)
      return true;
    return emptyImpl(G->getChild(), B, Cap, Stats);
  }
  case USRKind::CallSite:
    return emptyImpl(cast<CallSiteUSR>(S)->getChild(), B, Cap, Stats);
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(S);
    auto Lo = sym::tryEval(R->getLo(), B);
    auto Hi = sym::tryEval(R->getHi(), B);
    if (!Lo || !Hi)
      return std::nullopt;
    auto Saved = B.scalar(R->getVar());
    std::optional<bool> Result = true;
    for (int64_t I = *Lo; I <= *Hi; ++I) {
      B.setScalar(R->getVar(), I);
      Result = emptyImpl(R->getBody(), B, Cap, Stats);
      if (!Result || !*Result)
        break;
    }
    if (Saved)
      B.setScalar(R->getVar(), *Saved);
    return Result;
  }
  }
  halo_unreachable("covered switch");
}

} // namespace

std::optional<std::vector<int64_t>> usr::evalUSR(const USR *S,
                                                 sym::Bindings &B, size_t Cap,
                                                 USREvalStats *Stats) {
  return evalImpl(S, B, Cap, Stats);
}

std::optional<bool> usr::evalUSREmpty(const USR *S, sym::Bindings &B,
                                      size_t Cap, USREvalStats *Stats) {
  return emptyImpl(S, B, Cap, Stats);
}
