//===- usr/USR.cpp - Uniform set representation language ------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "usr/USR.h"

#include "support/Error.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace halo;
using namespace halo::usr;
using sym::Expr;
using sym::SymbolId;

/// Constant ranges up to this trip count unroll into explicit unions.
static constexpr int64_t RecurUnrollLimit = 8;

//===----------------------------------------------------------------------===//
// USR queries
//===----------------------------------------------------------------------===//

bool USR::dependsOn(SymbolId S) const {
  return std::binary_search(FreeSyms.begin(), FreeSyms.end(), S);
}

bool USR::isInvariantAtDepth(int LoopDepth, const sym::Context &Ctx) const {
  for (SymbolId S : FreeSyms)
    if (Ctx.symbolInfo(S).DefLevel >= LoopDepth)
      return false;
  return true;
}

std::string USR::toString(const sym::Context &Ctx) const {
  std::ostringstream OS;
  print(OS, Ctx);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Interning
//===----------------------------------------------------------------------===//

static bool usrsEqual(const USR *A, const USR *B) {
  if (A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case USRKind::Empty:
    return true;
  case USRKind::Leaf:
    return cast<LeafUSR>(A)->getLMADs() == cast<LeafUSR>(B)->getLMADs();
  case USRKind::Union:
    return cast<UnionUSR>(A)->getChildren() ==
           cast<UnionUSR>(B)->getChildren();
  case USRKind::Intersect:
  case USRKind::Subtract: {
    const auto *BA = cast<BinaryUSR>(A), *BB = cast<BinaryUSR>(B);
    return BA->getLHS() == BB->getLHS() && BA->getRHS() == BB->getRHS();
  }
  case USRKind::Gate: {
    const auto *GA = cast<GateUSR>(A), *GB = cast<GateUSR>(B);
    return GA->getGate() == GB->getGate() && GA->getChild() == GB->getChild();
  }
  case USRKind::CallSite: {
    const auto *CA = cast<CallSiteUSR>(A), *CB = cast<CallSiteUSR>(B);
    return CA->getCallee() == CB->getCallee() &&
           CA->getChild() == CB->getChild();
  }
  case USRKind::Recur: {
    const auto *RA = cast<RecurUSR>(A), *RB = cast<RecurUSR>(B);
    return RA->getVar() == RB->getVar() && RA->getLo() == RB->getLo() &&
           RA->getHi() == RB->getHi() && RA->getBody() == RB->getBody();
  }
  }
  halo_unreachable("covered switch");
}

static size_t hashUSR(const USR *U) {
  size_t H = static_cast<size_t>(U->getKind()) * 0x9e3779b9u + 31;
  switch (U->getKind()) {
  case USRKind::Empty:
    break;
  case USRKind::Leaf:
    for (const lmad::LMAD &L : cast<LeafUSR>(U)->getLMADs()) {
      hashCombine(H, L.offset());
      for (const lmad::Dim &D : L.dims()) {
        hashCombine(H, D.Stride);
        hashCombine(H, D.Span);
      }
    }
    break;
  case USRKind::Union:
    for (const USR *C : cast<UnionUSR>(U)->getChildren())
      hashCombine(H, C);
    break;
  case USRKind::Intersect:
  case USRKind::Subtract: {
    const auto *B = cast<BinaryUSR>(U);
    hashCombine(H, B->getLHS());
    hashCombine(H, B->getRHS());
    break;
  }
  case USRKind::Gate: {
    const auto *G = cast<GateUSR>(U);
    hashCombine(H, G->getGate());
    hashCombine(H, G->getChild());
    break;
  }
  case USRKind::CallSite: {
    const auto *C = cast<CallSiteUSR>(U);
    hashCombine(H, std::hash<std::string>{}(C->getCallee()));
    hashCombine(H, C->getChild());
    break;
  }
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(U);
    hashCombine(H, static_cast<size_t>(R->getVar()));
    hashCombine(H, R->getLo());
    hashCombine(H, R->getHi());
    hashCombine(H, R->getBody());
    break;
  }
  }
  return H;
}

const USR *USRContext::intern(std::unique_ptr<USR> N, size_t Hash) {
  auto Range = InternTable.equal_range(Hash);
  for (auto It = Range.first; It != Range.second; ++It)
    if (usrsEqual(It->second, N.get()))
      return It->second;
  N->Id = static_cast<uint32_t>(Nodes.size());
  const USR *Raw = N.get();
  Nodes.push_back(std::move(N));
  InternTable.emplace(Hash, Raw);
  return Raw;
}

USRContext::USRContext(sym::Context &SymCtx, pdag::PredContext &PredCtx)
    : SymCtx(SymCtx), PredCtx(PredCtx) {
  std::unique_ptr<USR> E(new EmptyUSR());
  size_t H = hashUSR(E.get());
  EmptyNode = intern(std::move(E), H);
}

USRContext::~USRContext() = default;

static std::vector<SymbolId> unionSyms(std::vector<SymbolId> A,
                                       const std::vector<SymbolId> &B) {
  std::vector<SymbolId> Out;
  Out.reserve(A.size() + B.size());
  std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                 std::back_inserter(Out));
  return Out;
}

static std::vector<SymbolId> lmadSyms(const lmad::LMADSet &Set) {
  std::vector<SymbolId> Out;
  for (const lmad::LMAD &L : Set) {
    Out = unionSyms(std::move(Out), L.offset()->freeSymbols());
    for (const lmad::Dim &D : L.dims()) {
      Out = unionSyms(std::move(Out), D.Stride->freeSymbols());
      Out = unionSyms(std::move(Out), D.Span->freeSymbols());
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Constructors
//===----------------------------------------------------------------------===//

const USR *USRContext::leaf(lmad::LMADSet L) {
  if (L.empty())
    return EmptyNode;
  // Deduplicate (structural equality is pointer equality componentwise).
  lmad::LMADSet Out;
  for (const lmad::LMAD &X : L)
    if (std::find(Out.begin(), Out.end(), X) == Out.end())
      Out.push_back(X);
  std::vector<SymbolId> Free = lmadSyms(Out);
  std::unique_ptr<USR> N(new LeafUSR(std::move(Out), std::move(Free)));
  size_t H = hashUSR(N.get());
  return intern(std::move(N), H);
}

const USR *USRContext::interval(const Expr *Offset, const Expr *Len) {
  if (auto C = SymCtx.constValue(Len); C && *C <= 0)
    return EmptyNode;
  return leaf(lmad::LMAD::makeInterval(SymCtx, Offset, Len));
}

const USR *USRContext::union2(const USR *A, const USR *B) {
  return unionN({A, B});
}

const USR *USRContext::unionN(std::vector<const USR *> Cs) {
  std::vector<const USR *> Flat;
  lmad::LMADSet Leaves;
  for (const USR *C : Cs) {
    if (C->isEmptySet())
      continue;
    if (const auto *U = dyn_cast<UnionUSR>(C)) {
      for (const USR *Sub : U->getChildren()) {
        if (const auto *L = dyn_cast<LeafUSR>(Sub))
          Leaves.insert(Leaves.end(), L->getLMADs().begin(),
                        L->getLMADs().end());
        else
          Flat.push_back(Sub);
      }
    } else if (const auto *L = dyn_cast<LeafUSR>(C)) {
      Leaves.insert(Leaves.end(), L->getLMADs().begin(), L->getLMADs().end());
    } else {
      Flat.push_back(C);
    }
  }
  // Merge same-gate children: g#A u g#B == g#(A u B). This is one half of
  // the UMEG-preserving machinery and is unconditionally sound.
  {
    std::map<const pdag::Pred *, std::vector<const USR *>> ByGate;
    std::vector<const USR *> Rest;
    for (const USR *C : Flat) {
      if (const auto *G = dyn_cast<GateUSR>(C))
        ByGate[G->getGate()].push_back(G->getChild());
      else
        Rest.push_back(C);
    }
    if (!ByGate.empty()) {
      bool AnyMerged = false;
      for (const auto &KV : ByGate)
        if (KV.second.size() > 1)
          AnyMerged = true;
      if (AnyMerged) {
        for (const auto &KV : ByGate)
          Rest.push_back(gate(KV.first, unionN(KV.second)));
        Flat = std::move(Rest);
      }
    }
  }
  if (!Leaves.empty())
    Flat.push_back(leaf(std::move(Leaves)));
  std::sort(Flat.begin(), Flat.end(),
            [](const USR *A, const USR *B) { return A->getId() < B->getId(); });
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  if (Flat.empty())
    return EmptyNode;
  if (Flat.size() == 1)
    return Flat[0];
  std::vector<SymbolId> Free;
  for (const USR *C : Flat)
    Free = unionSyms(std::move(Free), C->freeSymbols());
  std::unique_ptr<USR> N(new UnionUSR(std::move(Flat), std::move(Free)));
  size_t H = hashUSR(N.get());
  return intern(std::move(N), H);
}

const USR *USRContext::intersect(const USR *A, const USR *B) {
  if (A->isEmptySet() || B->isEmptySet())
    return EmptyNode;
  if (A == B)
    return A;
  // Canonical operand order (intersection is commutative).
  if (B->getId() < A->getId())
    std::swap(A, B);
  // Gate pull-up: (g#S) n T == g#(S n T).
  if (const auto *G = dyn_cast<GateUSR>(A))
    return gate(G->getGate(), intersect(G->getChild(), B));
  if (const auto *G = dyn_cast<GateUSR>(B))
    return gate(G->getGate(), intersect(A, G->getChild()));
  std::vector<SymbolId> Free =
      unionSyms(std::vector<SymbolId>(A->freeSymbols()), B->freeSymbols());
  std::unique_ptr<USR> N(
      new BinaryUSR(USRKind::Intersect, A, B, std::move(Free)));
  size_t H = hashUSR(N.get());
  return intern(std::move(N), H);
}

const USR *USRContext::subtract(const USR *A, const USR *B) {
  if (A->isEmptySet())
    return EmptyNode;
  if (B->isEmptySet())
    return A;
  if (A == B)
    return EmptyNode;
  // (g#S) - T == g#(S - T).
  if (const auto *G = dyn_cast<GateUSR>(A))
    return gate(G->getGate(), subtract(G->getChild(), B));
  // Repeated-subtraction reassociation (Fig. 8a): (A' - B') - C ==
  // A' - (B' u C). Keeping one subtraction lets the union simplify in the
  // LMAD domain before predicate extraction.
  if (const auto *S = dyn_cast<BinaryUSR>(A); S && !S->isIntersect())
    return subtract(S->getLHS(), union2(S->getRHS(), B));
  std::vector<SymbolId> Free =
      unionSyms(std::vector<SymbolId>(A->freeSymbols()), B->freeSymbols());
  std::unique_ptr<USR> N(
      new BinaryUSR(USRKind::Subtract, A, B, std::move(Free)));
  size_t H = hashUSR(N.get());
  return intern(std::move(N), H);
}

const USR *USRContext::gate(const pdag::Pred *G, const USR *S) {
  if (G->isTrue())
    return S;
  if (G->isFalse() || S->isEmptySet())
    return EmptyNode;
  // Nested gates conjoin.
  if (const auto *Inner = dyn_cast<GateUSR>(S))
    return gate(PredCtx.and2(G, Inner->getGate()), Inner->getChild());
  std::vector<SymbolId> Free =
      unionSyms(std::vector<SymbolId>(G->freeSymbols()), S->freeSymbols());
  std::unique_ptr<USR> N(new GateUSR(G, S, std::move(Free)));
  size_t H = hashUSR(N.get());
  return intern(std::move(N), H);
}

const USR *USRContext::callSite(const std::string &Callee, const USR *S) {
  if (S->isEmptySet())
    return EmptyNode;
  std::unique_ptr<USR> N(new CallSiteUSR(
      Callee, S, std::vector<SymbolId>(S->freeSymbols())));
  size_t H = hashUSR(N.get());
  return intern(std::move(N), H);
}

const USR *USRContext::recur(SymbolId Var, const Expr *Lo, const Expr *Hi,
                             const USR *Body) {
  if (Body->isEmptySet())
    return EmptyNode;
  const pdag::Pred *NonEmptyRange = PredCtx.le(Lo, Hi);
  if (!Body->dependsOn(Var))
    return gate(NonEmptyRange, Body);

  // Exact LMAD aggregation: the union over the range of a leaf is itself a
  // leaf when every LMAD's offset is affine in Var (Sec. 2.1).
  if (const auto *L = dyn_cast<LeafUSR>(Body)) {
    lmad::LMADSet Agg;
    bool AllOk = true;
    for (const lmad::LMAD &X : L->getLMADs()) {
      auto A = lmad::aggregate(SymCtx, X, Var, Lo, Hi);
      if (!A) {
        AllOk = false;
        break;
      }
      Agg.push_back(*A);
    }
    if (AllOk)
      return gate(NonEmptyRange, leaf(std::move(Agg)));
  }

  // Union distributes through the recurrence.
  if (const auto *U = dyn_cast<UnionUSR>(Body)) {
    std::vector<const USR *> Parts;
    Parts.reserve(U->getChildren().size());
    for (const USR *C : U->getChildren())
      Parts.push_back(recur(Var, Lo, Hi, C));
    return unionN(std::move(Parts));
  }

  // Small constant ranges unroll.
  auto LoC = SymCtx.constValue(Lo);
  auto HiC = SymCtx.constValue(Hi);
  if (LoC && HiC) {
    if (*LoC > *HiC)
      return EmptyNode;
    if (*HiC - *LoC < RecurUnrollLimit) {
      std::vector<const USR *> Parts;
      for (int64_t I = *LoC; I <= *HiC; ++I) {
        std::map<SymbolId, const Expr *> M{{Var, SymCtx.intConst(I)}};
        Parts.push_back(substitute(Body, M));
      }
      return unionN(std::move(Parts));
    }
  }

  std::vector<SymbolId> Free(Body->freeSymbols());
  Free.erase(std::remove(Free.begin(), Free.end(), Var), Free.end());
  Free = unionSyms(std::move(Free), Lo->freeSymbols());
  Free = unionSyms(std::move(Free), Hi->freeSymbols());
  std::unique_ptr<USR> N(new RecurUSR(Var, Lo, Hi, Body, std::move(Free)));
  size_t H = hashUSR(N.get());
  return intern(std::move(N), H);
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

const USR *
USRContext::substitute(const USR *S,
                       const std::map<SymbolId, const Expr *> &M) {
  if (M.empty())
    return S;
  bool Touches = false;
  for (const auto &KV : M)
    if (S->dependsOn(KV.first)) {
      Touches = true;
      break;
    }
  if (!Touches)
    return S;

  switch (S->getKind()) {
  case USRKind::Empty:
    return S;
  case USRKind::Leaf: {
    lmad::LMADSet Out;
    for (const lmad::LMAD &L : cast<LeafUSR>(S)->getLMADs())
      Out.push_back(lmad::substitute(SymCtx, L, M));
    return leaf(std::move(Out));
  }
  case USRKind::Union: {
    std::vector<const USR *> Cs;
    for (const USR *C : cast<UnionUSR>(S)->getChildren())
      Cs.push_back(substitute(C, M));
    return unionN(std::move(Cs));
  }
  case USRKind::Intersect: {
    const auto *B = cast<BinaryUSR>(S);
    return intersect(substitute(B->getLHS(), M), substitute(B->getRHS(), M));
  }
  case USRKind::Subtract: {
    const auto *B = cast<BinaryUSR>(S);
    return subtract(substitute(B->getLHS(), M), substitute(B->getRHS(), M));
  }
  case USRKind::Gate: {
    const auto *G = cast<GateUSR>(S);
    return gate(PredCtx.substitute(G->getGate(), M),
                substitute(G->getChild(), M));
  }
  case USRKind::CallSite: {
    const auto *C = cast<CallSiteUSR>(S);
    return callSite(C->getCallee(), substitute(C->getChild(), M));
  }
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(S);
    const Expr *Lo = SymCtx.substitute(R->getLo(), M);
    const Expr *Hi = SymCtx.substitute(R->getHi(), M);
    std::map<SymbolId, const Expr *> Inner(M);
    Inner.erase(R->getVar());
    SymbolId Var = R->getVar();
    const USR *Body = R->getBody();
    bool Captures = false;
    for (const auto &KV : Inner)
      if (KV.second->dependsOn(Var) && Body->dependsOn(KV.first)) {
        Captures = true;
        break;
      }
    if (Captures) {
      SymbolId Fresh = SymCtx.freshSymbol(SymCtx.symbolInfo(Var).Name,
                                          SymCtx.symbolInfo(Var).DefLevel);
      std::map<SymbolId, const Expr *> Rename{{Var, SymCtx.symRef(Fresh)}};
      Body = substitute(Body, Rename);
      Var = Fresh;
    }
    return recur(Var, Lo, Hi,
                 Inner.empty() ? Body : substitute(Body, Inner));
  }
  }
  halo_unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

void USR::print(std::ostream &OS, const sym::Context &Ctx) const {
  switch (Kind) {
  case USRKind::Empty:
    OS << "{}";
    return;
  case USRKind::Leaf: {
    const auto &Ls = cast<LeafUSR>(this)->getLMADs();
    if (Ls.size() > 1)
      OS << "{";
    for (size_t I = 0; I < Ls.size(); ++I) {
      if (I)
        OS << ", ";
      Ls[I].print(OS, Ctx);
    }
    if (Ls.size() > 1)
      OS << "}";
    return;
  }
  case USRKind::Union: {
    OS << "(";
    const auto &Cs = cast<UnionUSR>(this)->getChildren();
    for (size_t I = 0; I < Cs.size(); ++I) {
      if (I)
        OS << " u ";
      Cs[I]->print(OS, Ctx);
    }
    OS << ")";
    return;
  }
  case USRKind::Intersect:
  case USRKind::Subtract: {
    const auto *B = cast<BinaryUSR>(this);
    OS << "(";
    B->getLHS()->print(OS, Ctx);
    OS << (B->isIntersect() ? " n " : " - ");
    B->getRHS()->print(OS, Ctx);
    OS << ")";
    return;
  }
  case USRKind::Gate: {
    const auto *G = cast<GateUSR>(this);
    OS << "(";
    G->getGate()->print(OS, Ctx);
    OS << " # ";
    G->getChild()->print(OS, Ctx);
    OS << ")";
    return;
  }
  case USRKind::CallSite: {
    const auto *C = cast<CallSiteUSR>(this);
    OS << "call<" << C->getCallee() << ">(";
    C->getChild()->print(OS, Ctx);
    OS << ")";
    return;
  }
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(this);
    OS << "U(" << Ctx.symbolInfo(R->getVar()).Name << "=";
    R->getLo()->print(OS, Ctx);
    OS << "..";
    R->getHi()->print(OS, Ctx);
    OS << ": ";
    R->getBody()->print(OS, Ctx);
    OS << ")";
    return;
  }
  }
  halo_unreachable("covered switch");
}
