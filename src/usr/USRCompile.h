//===- usr/USRCompile.h - USR interval-run bytecode compiler ---*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a USR DAG once into flat bytecode that evaluates over *sorted
/// coalesced interval runs* instead of materialized point vectors. This is
/// the exact-runtime-test half of the compile-once / run-many machinery:
/// the reference interpreter in USREval.h enumerates every point of every
/// LMAD, re-sorts per leaf and re-walks whole recurrence prefixes per
/// iteration, which makes the paper's expensive fallback (direct
/// evaluation of the independence USR, Sec. 2.2 / Sec. 5 — HOIST-USR)
/// needlessly dear. The compiled form evaluates the same sets over runs
/// `{Lo, Lo+Stride, ..., Hi}`:
///
///  - contiguous/strided LMAD leaves emit one run per non-run dimension
///    combination in O(#runs), never calling lmad::enumerate,
///  - Union is a sort-once k-way merge of runs; Intersect/Subtract are
///    linear run sweeps (with a galloping advance for the ubiquitous
///    tiny-against-large case, and an exact pointwise fallback when
///    incompatible strides genuinely interleave),
///  - Gate reuses an already-compiled pdag::CompiledPred — shared with the
///    predicate-cascade cache when the caller provides one — feeding
///    recurrence variables straight from the evaluation frame,
///  - partial recurrences (`U_{k=lo..i-1} S(k)`) keep an incremental
///    prefix cache: advancing the enclosing iteration extends the
///    accumulated run set instead of re-evaluating the whole triangle,
///    which turns the paper's Eq. 2 equations from quadratic to
///    near-linear,
///  - an emptiness-only mode short-circuits on the first surviving run at
///    union polarity (what HoistCache::emptiness and the Executor's
///    HOIST-USR fallback actually need), and large root recurrences chunk
///    their range across a ThreadPool with the same exact first-failure
///    protocol as the compiled predicates' parallelAllOf reduction.
///
/// evalUSR/evalUSREmpty remain the reference semantics; the property tests
/// in tests/usr_compile_test.cpp cross-check the two evaluators on random
/// USR programs, including failure (unbound symbol / cap) cases. See
/// src/usr/README.md for the run representation and the bytecode ops.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_USR_USRCOMPILE_H
#define HALO_USR_USRCOMPILE_H

#include "pdag/ExprCode.h"
#include "pdag/PredCompile.h"
#include "support/ThreadPool.h"
#include "usr/USR.h"
#include "usr/USREval.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace halo {
namespace plan {
struct PlanCodec;
} // namespace plan
namespace usr {

/// One interval run: the arithmetic progression {Lo, Lo+Stride, ..., Hi}.
/// Invariants: Hi >= Lo, Stride >= 1, (Hi - Lo) % Stride == 0, and
/// singletons (Lo == Hi) are canonicalized to Stride == 1. A run vector in
/// canonical form is sorted by Lo with pairwise-disjoint point sets.
struct Run {
  int64_t Lo = 0;
  int64_t Hi = 0;
  int64_t Stride = 1;

  int64_t count() const { return (Hi - Lo) / Stride + 1; }
  bool contains(int64_t P) const {
    return P >= Lo && P <= Hi && (P - Lo) % Stride == 0;
  }
  bool operator==(const Run &O) const {
    return Lo == O.Lo && Hi == O.Hi && Stride == O.Stride;
  }
};

using RunVec = std::vector<Run>;

/// Expands canonical runs to the sorted point vector they denote.
std::vector<int64_t> expandRuns(const RunVec &Runs);

/// One USR-bytecode instruction. The evaluator is structured: Recur and
/// Call bodies are instruction sub-ranges executed by recursion, so no
/// loop/return stacks exist; everything else operates on a stack of run
/// vectors.
struct USRInstr {
  enum class Op : uint8_t {
    PushEmpty,   ///< push {}
    Leaf,        ///< eval LMADs [A, B) of the LMAD table; push their runs
    UnionN,      ///< pop A vectors, push their k-way merge
    Intersect,   ///< pop rhs, lhs; push lhs ∩ rhs
    Subtract,    ///< pop rhs, lhs; push lhs \ rhs
    SkipIfEmpty, ///< top empty: jump A (lhs-empty short-circuit, keeps top)
    Gate,        ///< gate desc A: false -> push {} and jump B; unknown ->
                 ///< fail; true -> fall through into the child's code
    Recur,       ///< recur desc A: iterate the body sub-range, push the
                 ///< accumulated union (or fuse into a following
                 ///< Intersect/Subtract without copying)
    Call,        ///< shared-node desc A: run its code range (DAG sharing:
                 ///< multiply-referenced nodes compile once per polarity)
  };
  Op Opcode;
  uint32_t A = 0, B = 0;
  /// Union polarity w.r.t. the root: nonemptiness here decides the root's
  /// nonemptiness, so emptiness-mode evaluation may short-circuit.
  uint8_t Deciding = 0;
};

/// Side tables.
struct CompiledUSRDim {
  uint32_t StrideBegin = 0, StrideEnd = 0;
  uint32_t SpanBegin = 0, SpanEnd = 0;
};
struct CompiledUSRLmad {
  uint32_t OffsetBegin = 0, OffsetEnd = 0;
  uint32_t DimBegin = 0, DimEnd = 0;
};
struct CompiledUSRGate {
  const pdag::CompiledPred *Pred = nullptr;
  /// Scalar feeds (pred slot <- our slot) for recurrence variables the
  /// gate reads; the frame slot tracks exactly what sym::Bindings would
  /// contain under the interpreter (bound from B, set by recurrences,
  /// restored after), so feeding it reproduces tryEvalPred's view.
  uint32_t FeedBegin = 0, FeedEnd = 0;
  /// No recurrence variable occurs in the predicate: the tri-state result
  /// is memoized per binding in the frame and reused until re-bind.
  uint8_t Invariant = 0;
  uint32_t MemoSlot = 0;
};
struct CompiledUSRGateFeed {
  uint32_t PredSlot = 0;
  uint32_t OurSlot = 0;
};
struct CompiledUSRRecur {
  uint32_t LoBegin = 0, LoEnd = 0;
  uint32_t HiBegin = 0, HiEnd = 0;
  uint32_t VarSlot = 0;
  uint32_t BodyBegin = 0, BodyEnd = 0;
  /// Body independent of every other recurrence variable: the accumulated
  /// run set may be cached and *extended* when the bounds grow (the
  /// triangular `U_{k=lo..i-1}` prefix pattern of Eq. 2).
  uint8_t PrefixCacheable = 0;
  uint32_t CacheSlot = 0;
};
struct CompiledUSRCall {
  uint32_t Begin = 0, End = 0;
};

/// A USR compiled to flat interval-run bytecode. Immutable after
/// compile(); evaluation is const and thread-compatible (the parallel
/// emptiness evaluator copies the bound frame per worker).
class CompiledUSR {
public:
  /// Evaluation state (opaque; defined in USRCompile.cpp).
  struct Frame;

  /// Resolves gate predicates to compiled form. When the caller has a
  /// compile-once predicate cache (rt::PredCompileCache via
  /// rt::USRCompileCache), pass its lookup so gates share the cascade
  /// stages' bytecode; otherwise gates are compiled and owned here.
  using PredProvider =
      std::function<const pdag::CompiledPred *(const pdag::Pred *)>;

  /// Caller-owned reusable evaluation frame (analyze-once / execute-many):
  /// the first eval against a Bindings binds every symbol slot; later
  /// evals with an unchanged sym::BindingsStamp skip allocation and
  /// re-binding and keep the invariant-gate memo and recurrence prefix
  /// caches warm (both depend only on the bindings). A frame belongs to
  /// one CompiledUSR at a time and must not be used concurrently.
  class PooledFrame {
  public:
    PooledFrame();
    ~PooledFrame();
    PooledFrame(PooledFrame &&) noexcept;
    PooledFrame &operator=(PooledFrame &&) noexcept;
    PooledFrame(const PooledFrame &) = delete;
    PooledFrame &operator=(const PooledFrame &) = delete;

  private:
    friend class CompiledUSR;
    std::unique_ptr<Frame> Main;
    std::vector<Frame> Workers;
    const CompiledUSR *BoundTo = nullptr;
    sym::BindingsStamp Stamp;
    unsigned WorkersBoundFor = 0;
    bool WorkersValid = false;
  };

  /// Lowers \p S. \p Ctx must be the symbol context it was built against.
  /// Returns null when \p S trips a lowering resource guard (nesting
  /// beyond pdag::LoweringMaxNestDepth, bytecode beyond
  /// pdag::LoweringMaxCodeLen, or a gate predicate that itself failed
  /// predicate lowering — including a null from \p Preds): callers must
  /// fall back to the reference interpreter (usr::evalUSREmpty); the rt
  /// layer counts such demotions in GuardDemotions stats.
  static std::unique_ptr<CompiledUSR> compile(const USR *S,
                                              const sym::Context &Ctx,
                                              PredProvider Preds = nullptr);

  /// Emptiness-only evaluation: same contract as usr::evalUSREmpty
  /// (nullopt on evaluation failure; "not empty" short-circuits before
  /// any cap at union polarity). \p BlockGates selects the batched gate
  /// tier: variant gate predicates guarding a whole recurrence body are
  /// probed pdag::ExprBlockWidth iterations per dispatch (bit-identical
  /// per-iteration tri-states; see batchableGate).
  std::optional<bool> evalEmpty(const sym::Bindings &B,
                                size_t Cap = 1u << 22,
                                USREvalStats *Stats = nullptr,
                                bool BlockGates = true) const;

  /// evalEmpty against a caller-owned pooled frame.
  std::optional<bool> evalEmptyPooled(PooledFrame &PF,
                                      const sym::Bindings &B,
                                      size_t Cap = 1u << 22,
                                      USREvalStats *Stats = nullptr,
                                      bool BlockGates = true) const;

  /// evalEmpty with a root recurrence chunked across \p Pool under the
  /// exact first-failure protocol: the merged answer (outcome at the
  /// earliest non-empty/failed iteration) is identical to the serial
  /// order, including which of nullopt / "not empty" decides. Ranges
  /// shorter than MinParallelIters * numThreads run serially.
  /// A fired \p Cancel token makes the sweep bail at the next chunk
  /// boundary and return nullopt — never a (cacheable) emptiness answer.
  std::optional<bool>
  evalEmptyParallel(PooledFrame &PF, const sym::Bindings &B, ThreadPool &Pool,
                    size_t Cap = 1u << 22, USREvalStats *Stats = nullptr,
                    int64_t MinParallelIters = 2048,
                    const support::CancelToken *Cancel = nullptr,
                    bool BlockGates = true) const;

  /// Full evaluation to canonical runs. Same failure contract as
  /// usr::evalUSR.
  std::optional<RunVec> evalRuns(const sym::Bindings &B,
                                 size_t Cap = 1u << 22,
                                 USREvalStats *Stats = nullptr,
                                 bool BlockGates = true) const;

  /// Full evaluation expanded to the sorted point set: bit-identical to
  /// usr::evalUSR on every input (the parity-test entry point).
  std::optional<std::vector<int64_t>>
  evalPoints(const sym::Bindings &B, size_t Cap = 1u << 22,
             USREvalStats *Stats = nullptr,
             bool BlockGates = true) const;

  const USR *source() const { return Source; }
  size_t codeSize() const { return Code.size() + XCode.size(); }
  size_t numGates() const { return Gates.size(); }
  size_t numRecurs() const { return Recurs.size(); }
  /// True when evalEmptyParallel can actually fan out.
  bool hasParallelRoot() const { return RootRecur >= 0; }
  /// Expression-stack slots the exact-depth precompute saves per bound
  /// frame, relative to the old code-length-based over-allocation.
  /// Surfaced through rt::FramePoolOf stats.
  size_t frameStackSlotsSaved() const { return XCode.size() + 1 - XMaxDepth; }

private:
  CompiledUSR() = default;

  enum class Status : uint8_t { Ok, Fail, NotEmpty };

  bool bindFrame(Frame &F, const sym::Bindings &B) const;
  /// Binds (or reuses) the pooled main frame; returns true on reuse.
  bool bindPooled(PooledFrame &PF, const sym::Bindings &B) const;
  static Frame &scratchFrame();

  Status run(uint32_t Begin, uint32_t End, Frame &F, const sym::Bindings &B,
             size_t Cap, bool EmptyMode) const;
  Status evalLeaf(const USRInstr &I, Frame &F, size_t Cap,
                  bool DecidingEmpty) const;
  Status evalRecur(const USRInstr &I, uint32_t &Ip, uint32_t RegionEnd,
                   Frame &F, const sym::Bindings &B, size_t Cap,
                   bool EmptyMode) const;
  /// Tri-state: 0 false, 1 true, 2 unknown (evaluation failure).
  uint8_t evalGate(const CompiledUSRGate &G, Frame &F,
                   const sym::Bindings &B) const;
  /// The gate of \p R when its iteration sweep may be block-batched: the
  /// body is a single variant gate spanning the whole body, the gate
  /// predicate is loop-free (blockableMain), a feed carries R's variable
  /// (its pred slot is returned in \p PredVarSlot), and no *other* feed
  /// slot is written by a nested recurrence inside the gated child — so
  /// the non-variable overrides are uniform across the block and each
  /// lane's tri-state is bit-identical to the scalar probe at that
  /// iteration. Returns nullptr otherwise.
  const CompiledUSRGate *batchableGate(const CompiledUSRRecur &R,
                                       uint32_t &PredVarSlot) const;
  std::optional<int64_t> evalExpr(uint32_t Begin, uint32_t End,
                                  Frame &F) const;
  std::optional<bool> finishEmpty(Status St, Frame &F,
                                  USREvalStats *Stats) const;

  const USR *Source = nullptr;
  std::vector<USRInstr> Code;
  std::vector<pdag::ExprInstr> XCode;
  std::vector<CompiledUSRLmad> Lmads;
  std::vector<CompiledUSRDim> Dims;
  std::vector<CompiledUSRGate> Gates;
  std::vector<CompiledUSRGateFeed> GateFeeds;
  std::vector<CompiledUSRRecur> Recurs;
  std::vector<CompiledUSRCall> Calls;
  std::vector<sym::SymbolId> ScalarSlots;
  std::vector<sym::SymbolId> ArraySlots;
  /// Gate predicates compiled here because no provider was supplied.
  std::vector<std::unique_ptr<pdag::CompiledPred>> OwnedPreds;
  uint32_t MainCodeEnd = 0;
  uint32_t NumGateMemoSlots = 0;
  /// Exact peak depth of the expression stack (frames size XStack from
  /// this instead of XCode.size() + 1).
  uint32_t XMaxDepth = 0;
  /// Index into Recurs of a root recurrence (CallSite wrappers stripped),
  /// -1 otherwise; the parallel emptiness entry point fans out over it.
  int32_t RootRecur = -1;

  friend class USRCompiler;
  /// Plan serialization encodes the compiled tables for the verify-only
  /// bytecode records of the .hplan format (src/plan/).
  friend struct halo::plan::PlanCodec;
};

} // namespace usr
} // namespace halo

#endif // HALO_USR_USRCOMPILE_H
