//===- usr/USR.h - Uniform set representation language ---------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The USR (uniform set representation) language of Sec. 2: a scoped,
/// closed-under-composition DAG language for sets of array indexes.
/// Leaves are LMAD sets; interior nodes represent exactly the operations
/// that fall outside the LMAD algebra:
///
///  - irreducible set operations: union, intersection, subtraction,
///  - control flow: gates (`pred # S` — the summary exists iff the
///    predicate holds), call sites across which summaries cannot be
///    translated,
///  - total and partial loop recurrences (`U_{i=lo..hi} S(i)`; a partial
///    recurrence `U_{k=1..i-1} S(k)` is a recurrence whose upper bound
///    mentions an outer variable).
///
/// Keeping these operations *in the language* instead of approximating at
/// construction time is the paper's key representational idea (Sec. 1.1):
/// conservative approximation is deferred to predicate-extraction time,
/// where an accurate independence summary is still available to pattern
/// match (e.g. footnote 4 of the paper).
///
/// Smart constructors canonicalize aggressively; in particular, a
/// recurrence over a leaf whose LMADs aggregate in closed form folds to a
/// gated leaf (`lo <= hi # aggregated-LMADs`), which is how quasi-affine
/// accesses never reach an irreducible recurrence node.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_USR_USR_H
#define HALO_USR_USR_H

#include "lmad/LMAD.h"
#include "pdag/Pred.h"

#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace halo {
namespace usr {

enum class USRKind : uint8_t {
  Empty,
  Leaf,      // set of LMADs
  Union,     // n-ary
  Intersect, // binary
  Subtract,  // binary
  Gate,      // pred # S
  CallSite,  // S across an untranslatable call
  Recur,     // U_{var=lo..hi} body
};

class USRContext;

/// Immutable, interned USR node.
class USR {
public:
  virtual ~USR() = default;

  USRKind getKind() const { return Kind; }
  uint32_t getId() const { return Id; }
  bool isEmptySet() const { return Kind == USRKind::Empty; }

  const std::vector<sym::SymbolId> &freeSymbols() const { return FreeSyms; }
  bool dependsOn(sym::SymbolId S) const;
  bool isInvariantAtDepth(int LoopDepth, const sym::Context &Ctx) const;

  void print(std::ostream &OS, const sym::Context &Ctx) const;
  std::string toString(const sym::Context &Ctx) const;

protected:
  USR(USRKind K, std::vector<sym::SymbolId> Free)
      : Kind(K), FreeSyms(std::move(Free)) {}

private:
  USRKind Kind;
  uint32_t Id = 0;
  std::vector<sym::SymbolId> FreeSyms;
  friend class USRContext;
};

/// The empty set (the right-hand side of every independence equation).
class EmptyUSR : public USR {
public:
  static bool classof(const USR *U) { return U->getKind() == USRKind::Empty; }

private:
  EmptyUSR() : USR(USRKind::Empty, {}) {}
  friend class USRContext;
};

/// A set of LMADs over one array's linearized index space.
class LeafUSR : public USR {
public:
  const lmad::LMADSet &getLMADs() const { return LMADs; }

  static bool classof(const USR *U) { return U->getKind() == USRKind::Leaf; }

private:
  LeafUSR(lmad::LMADSet L, std::vector<sym::SymbolId> Free)
      : USR(USRKind::Leaf, std::move(Free)), LMADs(std::move(L)) {}
  lmad::LMADSet LMADs;
  friend class USRContext;
};

/// N-ary union with sorted, deduplicated, non-empty children.
class UnionUSR : public USR {
public:
  const std::vector<const USR *> &getChildren() const { return Children; }

  static bool classof(const USR *U) { return U->getKind() == USRKind::Union; }

private:
  UnionUSR(std::vector<const USR *> C, std::vector<sym::SymbolId> Free)
      : USR(USRKind::Union, std::move(Free)), Children(std::move(C)) {}
  std::vector<const USR *> Children;
  friend class USRContext;
};

/// Binary intersection / subtraction.
class BinaryUSR : public USR {
public:
  const USR *getLHS() const { return LHS; }
  const USR *getRHS() const { return RHS; }
  bool isIntersect() const { return getKind() == USRKind::Intersect; }

  static bool classof(const USR *U) {
    return U->getKind() == USRKind::Intersect ||
           U->getKind() == USRKind::Subtract;
  }

private:
  BinaryUSR(USRKind K, const USR *L, const USR *R,
            std::vector<sym::SymbolId> Free)
      : USR(K, std::move(Free)), LHS(L), RHS(R) {}
  const USR *LHS;
  const USR *RHS;
  friend class USRContext;
};

/// `pred # S`: the set is S when the gate holds, empty otherwise.
class GateUSR : public USR {
public:
  const pdag::Pred *getGate() const { return Gate; }
  const USR *getChild() const { return Child; }

  static bool classof(const USR *U) { return U->getKind() == USRKind::Gate; }

private:
  GateUSR(const pdag::Pred *G, const USR *C, std::vector<sym::SymbolId> Free)
      : USR(USRKind::Gate, std::move(Free)), Gate(G), Child(C) {}
  const pdag::Pred *Gate;
  const USR *Child;
  friend class USRContext;
};

/// A summary that could not be translated across a call site; kept for
/// diagnostics, treated as opaque by most reasoning.
class CallSiteUSR : public USR {
public:
  const std::string &getCallee() const { return Callee; }
  const USR *getChild() const { return Child; }

  static bool classof(const USR *U) {
    return U->getKind() == USRKind::CallSite;
  }

private:
  CallSiteUSR(std::string Callee, const USR *C,
              std::vector<sym::SymbolId> Free)
      : USR(USRKind::CallSite, std::move(Free)), Callee(std::move(Callee)),
        Child(C) {}
  std::string Callee;
  const USR *Child;
  friend class USRContext;
};

/// `U_{Var=Lo..Hi} Body` — a recurrence that failed exact LMAD
/// aggregation. Partial recurrences (`U_{k=1..i-1}`) are recurrences whose
/// Hi mentions an enclosing loop's variable.
class RecurUSR : public USR {
public:
  sym::SymbolId getVar() const { return Var; }
  const sym::Expr *getLo() const { return Lo; }
  const sym::Expr *getHi() const { return Hi; }
  const USR *getBody() const { return Body; }

  static bool classof(const USR *U) { return U->getKind() == USRKind::Recur; }

private:
  RecurUSR(sym::SymbolId Var, const sym::Expr *Lo, const sym::Expr *Hi,
           const USR *Body, std::vector<sym::SymbolId> Free)
      : USR(USRKind::Recur, std::move(Free)), Var(Var), Lo(Lo), Hi(Hi),
        Body(Body) {}
  sym::SymbolId Var;
  const sym::Expr *Lo;
  const sym::Expr *Hi;
  const USR *Body;
  friend class USRContext;
};

/// Owns and interns USR nodes; provides the canonicalizing constructors.
class USRContext {
public:
  USRContext(sym::Context &SymCtx, pdag::PredContext &PredCtx);
  ~USRContext();
  USRContext(const USRContext &) = delete;
  USRContext &operator=(const USRContext &) = delete;

  sym::Context &symCtx() { return SymCtx; }
  pdag::PredContext &predCtx() { return PredCtx; }

  const USR *empty() const { return EmptyNode; }

  /// Leaf over a set of LMADs (deduplicated; the empty set folds).
  const USR *leaf(lmad::LMADSet L);
  const USR *leaf(const lmad::LMAD &L) { return leaf(lmad::LMADSet{L}); }
  /// Convenience: contiguous [offset, offset+len-1] leaf.
  const USR *interval(const sym::Expr *Offset, const sym::Expr *Len);

  const USR *union2(const USR *A, const USR *B);
  const USR *unionN(std::vector<const USR *> Cs);
  const USR *intersect(const USR *A, const USR *B);
  const USR *subtract(const USR *A, const USR *B);
  const USR *gate(const pdag::Pred *G, const USR *S);
  const USR *callSite(const std::string &Callee, const USR *S);

  /// `U_{Var=Lo..Hi} Body`. Folds invariant bodies and leaf bodies whose
  /// LMADs aggregate in closed form to `(Lo <= Hi) # folded`; otherwise
  /// interns an irreducible recurrence node.
  const USR *recur(sym::SymbolId Var, const sym::Expr *Lo,
                   const sym::Expr *Hi, const USR *Body);

  /// Substitutes scalar symbols in every embedded expression/predicate;
  /// renames recurrence variables on capture.
  const USR *substitute(const USR *S,
                        const std::map<sym::SymbolId, const sym::Expr *> &M);

  size_t numNodes() const { return Nodes.size(); }

private:
  const USR *intern(std::unique_ptr<USR> N, size_t Hash);

  sym::Context &SymCtx;
  pdag::PredContext &PredCtx;
  std::vector<std::unique_ptr<USR>> Nodes;
  std::unordered_multimap<size_t, const USR *> InternTable;
  const USR *EmptyNode = nullptr;
};

} // namespace usr
} // namespace halo

#endif // HALO_USR_USR_H
