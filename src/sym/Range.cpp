//===- sym/Range.cpp - Symbolic ranges for bounded symbols ----------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "sym/Range.h"

#include "support/Casting.h"

using namespace halo;
using namespace halo::sym;

static bool touchesEnv(const Expr *E, const RangeEnv &Env) {
  for (SymbolId S : E->freeSymbols())
    if (Env.lookup(S))
      return true;
  return false;
}

static std::optional<const Expr *> boundImpl(Context &Ctx, const Expr *E,
                                             const RangeEnv &Env, bool IsLower,
                                             int Depth) {
  if (Depth > 8)
    return std::nullopt; // Guard against cyclic range definitions.
  if (!touchesEnv(E, Env))
    return E;

  LinearForm LF = Ctx.toLinear(E);
  const Expr *Acc = Ctx.intConst(LF.Constant);
  for (const Monomial &M : LF.Terms) {
    if (!touchesEnv(M.Prod, Env)) {
      Acc = Ctx.add(Acc, Ctx.mulConst(M.Prod, M.Coeff));
      continue;
    }
    // A reference into a *monotone* index array is bounded by the array
    // value at the bounded subscript (the CIV prefix arrays of Sec. 3.3).
    if (const auto *AR = dyn_cast<ArrayRefExpr>(M.Prod)) {
      if (!Ctx.symbolInfo(AR->getArray()).MonotoneArray)
        return std::nullopt;
      const bool DirS = (M.Coeff > 0) ? IsLower : !IsLower;
      auto IdxBound = boundImpl(Ctx, AR->getIndex(), Env, DirS, Depth + 1);
      if (!IdxBound)
        return std::nullopt;
      const Expr *Bound = Ctx.arrayRef(AR->getArray(), *IdxBound);
      Acc = Ctx.add(Acc, Ctx.mulConst(Bound, M.Coeff));
      continue;
    }
    // Only a bare bounded symbol is otherwise handled; products or opaque
    // atoms that embed a bounded symbol are a conservative failure.
    const auto *SR = dyn_cast<SymRefExpr>(M.Prod);
    if (!SR)
      return std::nullopt;
    const Range *R = Env.lookup(SR->getSymbol());
    if (!R)
      return std::nullopt;
    // bound(c*s, D) = c * bound(s, DirS) with DirS = D for c > 0, flipped
    // for c < 0; bound(s, lower) recurses into the range's Lo endpoint,
    // bound(s, upper) into Hi.
    const bool DirS = (M.Coeff > 0) ? IsLower : !IsLower;
    const Expr *End = DirS ? R->Lo : R->Hi;
    auto EndBound = boundImpl(Ctx, End, Env, DirS, Depth + 1);
    if (!EndBound)
      return std::nullopt;
    Acc = Ctx.add(Acc, Ctx.mulConst(*EndBound, M.Coeff));
  }
  return Acc;
}

std::optional<const Expr *> sym::boundExpr(Context &Ctx, const Expr *E,
                                           const RangeEnv &Env, bool IsLower) {
  return boundImpl(Ctx, E, Env, IsLower, 0);
}
