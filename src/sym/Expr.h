//===- sym/Expr.h - Canonical symbolic integer expressions -----*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned symbolic integer expressions in sum-of-products canonical form.
///
/// Every expression is one of:
///  - IntConst  : a 64-bit integer literal,
///  - SymRef    : a scalar symbol (loop index, program input, CIV value...),
///  - ArrayRef  : a read of an integer index array at a symbolic index
///                (e.g. IB(i)); treated as an opaque term by the algebra,
///  - Min / Max / FloorDiv / Mod : non-polynomial atoms,
///  - Mul       : a product of >= 2 atoms (sorted, with repetition),
///  - Add       : sum of monomials with integer coefficients plus a constant.
///
/// Construction canonicalizes aggressively (products of sums are expanded,
/// like monomials merged, constants folded), so two expressions are
/// semantically syntactically-equal iff they are the same pointer. This is
/// the property the factorization algorithm's pattern matching relies on:
/// e.g. `a <= b` is decided by checking whether `b - a` folds to a
/// non-negative constant.
///
/// The paper's analyses need to know which symbols a predicate may read and
/// whether they vary with a given loop; each Symbol carries a DefLevel (the
/// depth of the innermost loop that (re)defines it; 0 = invariant input) and
/// each Expr caches its free-symbol set.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SYM_EXPR_H
#define HALO_SYM_EXPR_H

#include "support/Casting.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace halo {
namespace sym {

using SymbolId = uint32_t;

/// A named integer symbol (scalar or index array).
struct Symbol {
  SymbolId Id = 0;
  std::string Name;
  /// True for index arrays (IB, IA, IX, ...) referenced via ArrayRef.
  bool IsArray = false;
  /// Depth of the innermost loop whose iterations (re)define this symbol;
  /// 0 means the symbol is invariant over the whole analyzed region.
  int DefLevel = 0;
  /// For index arrays: the values are known to be non-decreasing in the
  /// subscript (e.g. CIV prefix arrays, Sec. 3.3). Range analysis may then
  /// bound A(idx) by A(bound(idx)).
  bool MonotoneArray = false;
};

enum class ExprKind : uint8_t {
  IntConst,
  SymRef,
  ArrayRef,
  Min,
  Max,
  FloorDiv,
  Mod,
  Mul,
  Add,
};

class Context;

/// Immutable, interned expression node. Pointer equality == structural
/// equality within one Context.
class Expr {
public:
  ExprKind getKind() const { return Kind; }
  uint32_t getId() const { return Id; }

  /// Sorted set of symbols (scalars and arrays) this expression reads.
  const std::vector<SymbolId> &freeSymbols() const { return FreeSyms; }

  /// Returns true iff \p S appears in this expression.
  bool dependsOn(SymbolId S) const;

  /// Returns true iff every free symbol has DefLevel < \p LoopDepth, i.e.
  /// the expression is invariant w.r.t. the loop at that nesting depth.
  bool isInvariantAtDepth(int LoopDepth, const Context &Ctx) const;

  void print(std::ostream &OS, const Context &Ctx) const;
  std::string toString(const Context &Ctx) const;

  virtual ~Expr() = default;

protected:
  Expr(ExprKind K, uint32_t Id, std::vector<SymbolId> FreeSyms)
      : Kind(K), Id(Id), FreeSyms(std::move(FreeSyms)) {}

private:
  ExprKind Kind;
  uint32_t Id;
  std::vector<SymbolId> FreeSyms;

  friend class Context;
};

/// Integer literal.
class IntConstExpr : public Expr {
public:
  int64_t getValue() const { return Value; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::IntConst;
  }

private:
  IntConstExpr(uint32_t Id, int64_t V)
      : Expr(ExprKind::IntConst, Id, {}), Value(V) {}
  int64_t Value;
  friend class Context;
};

/// Reference to a scalar symbol.
class SymRefExpr : public Expr {
public:
  SymbolId getSymbol() const { return Sym; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::SymRef;
  }

private:
  SymRefExpr(uint32_t Id, SymbolId S)
      : Expr(ExprKind::SymRef, Id, {S}), Sym(S) {}
  SymbolId Sym;
  friend class Context;
};

/// Read of integer array \p Arr at symbolic \p Index, e.g. IB(i+1).
class ArrayRefExpr : public Expr {
public:
  SymbolId getArray() const { return Arr; }
  const Expr *getIndex() const { return Index; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::ArrayRef;
  }

private:
  ArrayRefExpr(uint32_t Id, SymbolId Arr, const Expr *Index,
               std::vector<SymbolId> Free)
      : Expr(ExprKind::ArrayRef, Id, std::move(Free)), Arr(Arr),
        Index(Index) {}
  SymbolId Arr;
  const Expr *Index;
  friend class Context;
};

/// Binary min/max over sorted operands (atoms for the polynomial algebra).
class MinMaxExpr : public Expr {
public:
  const Expr *getLHS() const { return LHS; }
  const Expr *getRHS() const { return RHS; }
  bool isMin() const { return getKind() == ExprKind::Min; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Min || E->getKind() == ExprKind::Max;
  }

private:
  MinMaxExpr(ExprKind K, uint32_t Id, const Expr *L, const Expr *R,
             std::vector<SymbolId> Free)
      : Expr(K, Id, std::move(Free)), LHS(L), RHS(R) {}
  const Expr *LHS;
  const Expr *RHS;
  friend class Context;
};

/// Floor division or modulus by a positive integer constant.
class DivModExpr : public Expr {
public:
  const Expr *getOperand() const { return Operand; }
  int64_t getDivisor() const { return Divisor; }
  bool isDiv() const { return getKind() == ExprKind::FloorDiv; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::FloorDiv || E->getKind() == ExprKind::Mod;
  }

private:
  DivModExpr(ExprKind K, uint32_t Id, const Expr *Op, int64_t D,
             std::vector<SymbolId> Free)
      : Expr(K, Id, std::move(Free)), Operand(Op), Divisor(D) {}
  const Expr *Operand;
  int64_t Divisor;
  friend class Context;
};

/// Product of >= 2 atom factors, sorted by expression id (with repetition,
/// so i*i is representable).
class MulExpr : public Expr {
public:
  const std::vector<const Expr *> &getFactors() const { return Factors; }

  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Mul; }

private:
  MulExpr(uint32_t Id, std::vector<const Expr *> F, std::vector<SymbolId> Free)
      : Expr(ExprKind::Mul, Id, std::move(Free)), Factors(std::move(F)) {}
  std::vector<const Expr *> Factors;
  friend class Context;
};

/// A monomial: integer coefficient times a product (an atom or MulExpr).
struct Monomial {
  const Expr *Prod = nullptr;
  int64_t Coeff = 0;
};

/// Sum of monomials plus constant. Terms are sorted by Prod id, coefficients
/// are nonzero, and the node is only created when it cannot fold to a
/// simpler form.
class AddExpr : public Expr {
public:
  const std::vector<Monomial> &getTerms() const { return Terms; }
  int64_t getConstant() const { return Constant; }

  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Add; }

private:
  AddExpr(uint32_t Id, std::vector<Monomial> T, int64_t C,
          std::vector<SymbolId> Free)
      : Expr(ExprKind::Add, Id, std::move(Free)), Terms(std::move(T)),
        Constant(C) {}
  std::vector<Monomial> Terms;
  int64_t Constant;
  friend class Context;
};

/// Linear-combination view used internally by the builders: a sum of
/// monomials plus a constant. Any expression can be viewed this way.
struct LinearForm {
  std::vector<Monomial> Terms;
  int64_t Constant = 0;
};

/// Owns and interns all expressions and symbols.
class Context {
public:
  Context();
  ~Context();
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  //===-- Symbols ---------------------------------------------------------==/

  /// Creates (or retrieves) the symbol named \p Name.
  SymbolId symbol(const std::string &Name, int DefLevel = 0,
                  bool IsArray = false);
  /// Creates a fresh symbol with a unique suffixed name (for recurrence
  /// bound variables, CIV instances, ...).
  SymbolId freshSymbol(const std::string &Base, int DefLevel = 0);
  const Symbol &symbolInfo(SymbolId Id) const;
  /// Looks up an existing symbol by name; returns false when absent (never
  /// creates). Used by the plan loader to re-resolve serialized names
  /// against a live context before deciding to adopt.
  bool findSymbol(const std::string &Name, SymbolId &Out) const;
  /// Number of symbols interned so far.
  size_t numSymbols() const { return Symbols.size(); }
  /// Updates the definition level of an existing symbol.
  void setDefLevel(SymbolId Id, int DefLevel);
  /// Marks an index array as value-monotone (non-decreasing in subscript).
  void setMonotoneArray(SymbolId Id, bool Monotone = true);

  //===-- Constructors ----------------------------------------------------==/

  const Expr *intConst(int64_t V);
  const Expr *symRef(SymbolId S);
  const Expr *symRef(const std::string &Name);
  const Expr *arrayRef(SymbolId Arr, const Expr *Index);

  const Expr *add(const Expr *A, const Expr *B);
  const Expr *sub(const Expr *A, const Expr *B);
  const Expr *neg(const Expr *A);
  const Expr *mul(const Expr *A, const Expr *B);
  const Expr *mulConst(const Expr *A, int64_t C);
  const Expr *addConst(const Expr *A, int64_t C);
  const Expr *min(const Expr *A, const Expr *B);
  const Expr *max(const Expr *A, const Expr *B);
  const Expr *floorDiv(const Expr *A, int64_t D);
  const Expr *mod(const Expr *A, int64_t D);

  /// Builds the canonical expression for a linear form.
  const Expr *fromLinear(LinearForm LF);
  /// Views \p E as a linear form (never fails).
  LinearForm toLinear(const Expr *E) const;

  //===-- Queries ---------------------------------------------------------==/

  /// If \p E is a constant, returns its value.
  std::optional<int64_t> constValue(const Expr *E) const;
  /// True iff every monomial coefficient and the constant of \p E are
  /// divisible by \p D (a syntactic sufficient condition for D | E).
  bool definitelyDivisibleBy(const Expr *E, int64_t D) const;
  /// GCD of all monomial coefficients of E (ignoring the constant);
  /// 0 when E is constant.
  int64_t coeffGcd(const Expr *E) const;

  /// Splits \p E as A*sym + B with \p Sym not occurring in B. Fails (returns
  /// nullopt) when Sym occurs inside a non-polynomial atom (ArrayRef index,
  /// Min/Max/Div/Mod operand). Used by the Fourier-Motzkin eliminator.
  struct LinearSplit {
    const Expr *A;
    const Expr *B;
  };
  std::optional<LinearSplit> splitLinearIn(const Expr *E, SymbolId Sym);

  /// Substitutes scalar symbols by expressions (simultaneously) and rebuilds
  /// canonically. Symbols not in \p Map are unchanged.
  const Expr *substitute(const Expr *E,
                         const std::map<SymbolId, const Expr *> &Map);

  /// Number of interned expression nodes (diagnostics / benchmarks).
  size_t numExprs() const { return Nodes.size(); }

private:
  const Expr *intern(std::unique_ptr<Expr> Node, size_t Hash);
  const Expr *makeProduct(std::vector<const Expr *> Factors);
  static std::vector<SymbolId> unionSyms(const std::vector<SymbolId> &A,
                                         const std::vector<SymbolId> &B);

  std::vector<std::unique_ptr<Expr>> Nodes;
  std::unordered_multimap<size_t, const Expr *> InternTable;
  std::vector<Symbol> Symbols;
  std::unordered_map<std::string, SymbolId> SymbolByName;
  unsigned FreshCounter = 0;
};

/// Convenience: A - B == 0 test via canonical difference.
inline bool structurallyEqual(const Expr *A, const Expr *B) { return A == B; }

std::ostream &operator<<(std::ostream &OS,
                         const std::pair<const Expr *, const Context *> &P);

} // namespace sym
} // namespace halo

#endif // HALO_SYM_EXPR_H
