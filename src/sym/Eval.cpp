//===- sym/Eval.cpp - Concrete evaluation of symbolic expressions ---------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "sym/Eval.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace halo;
using namespace halo::sym;

static int64_t floorDivInt(int64_t A, int64_t D) {
  int64_t Q = A / D;
  if ((A % D) != 0 && A < 0)
    --Q;
  return Q;
}

std::optional<int64_t> sym::tryEval(const Expr *E, const Bindings &B) {
  switch (E->getKind()) {
  case ExprKind::IntConst:
    return cast<IntConstExpr>(E)->getValue();
  case ExprKind::SymRef:
    return B.scalar(cast<SymRefExpr>(E)->getSymbol());
  case ExprKind::ArrayRef: {
    const auto *R = cast<ArrayRefExpr>(E);
    const ArrayBinding *A = B.array(R->getArray());
    if (!A)
      return std::nullopt;
    auto I = tryEval(R->getIndex(), B);
    if (!I || !A->inBounds(*I))
      return std::nullopt;
    return A->at(*I);
  }
  case ExprKind::Min:
  case ExprKind::Max: {
    const auto *M = cast<MinMaxExpr>(E);
    auto L = tryEval(M->getLHS(), B), R = tryEval(M->getRHS(), B);
    if (!L || !R)
      return std::nullopt;
    return M->isMin() ? std::min(*L, *R) : std::max(*L, *R);
  }
  case ExprKind::FloorDiv:
  case ExprKind::Mod: {
    const auto *D = cast<DivModExpr>(E);
    auto V = tryEval(D->getOperand(), B);
    if (!V)
      return std::nullopt;
    int64_t Q = floorDivInt(*V, D->getDivisor());
    return D->isDiv() ? Q : *V - Q * D->getDivisor();
  }
  case ExprKind::Mul: {
    int64_t Acc = 1;
    for (const Expr *F : cast<MulExpr>(E)->getFactors()) {
      auto V = tryEval(F, B);
      if (!V)
        return std::nullopt;
      Acc *= *V;
    }
    return Acc;
  }
  case ExprKind::Add: {
    const auto *A = cast<AddExpr>(E);
    int64_t Acc = A->getConstant();
    for (const Monomial &M : A->getTerms()) {
      auto V = tryEval(M.Prod, B);
      if (!V)
        return std::nullopt;
      Acc += M.Coeff * *V;
    }
    return Acc;
  }
  }
  halo_unreachable("covered switch");
}

int64_t sym::eval(const Expr *E, const Bindings &B) {
  auto V = tryEval(E, B);
  assert(V && "evaluation failed: unbound symbol or OOB array access");
  return *V;
}
