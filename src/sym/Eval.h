//===- sym/Eval.h - Concrete evaluation of symbolic expressions -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bindings map symbols to runtime values (scalars and integer index
/// arrays); the evaluator computes the concrete value of an expression.
/// This is the mechanism behind every *dynamic* test in the paper: the
/// extracted predicate program is interpreted against the loop's live-in
/// values instead of being compiled to Fortran.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SYM_EVAL_H
#define HALO_SYM_EVAL_H

#include "sym/Expr.h"

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace halo {
namespace sym {

/// Runtime value of an index array: Fortran-style, indexed from Lo.
struct ArrayBinding {
  int64_t Lo = 1;
  std::vector<int64_t> Vals;

  bool inBounds(int64_t I) const {
    return I >= Lo && I < Lo + static_cast<int64_t>(Vals.size());
  }
  int64_t at(int64_t I) const { return Vals[static_cast<size_t>(I - Lo)]; }
};

/// Maps symbols to concrete runtime values. Index arrays are held behind
/// shared immutable storage so copying a Bindings (one per worker thread
/// in the parallel executor) is cheap.
class Bindings {
public:
  void setScalar(SymbolId S, int64_t V) { Scalars[S] = V; }
  void clearScalar(SymbolId S) { Scalars.erase(S); }
  void setArray(SymbolId S, ArrayBinding A) {
    Arrays[S] = std::make_shared<ArrayBinding>(std::move(A));
  }

  std::optional<int64_t> scalar(SymbolId S) const {
    auto It = Scalars.find(S);
    if (It == Scalars.end())
      return std::nullopt;
    return It->second;
  }
  const ArrayBinding *array(SymbolId S) const {
    auto It = Arrays.find(S);
    return It == Arrays.end() ? nullptr : It->second.get();
  }

private:
  std::unordered_map<SymbolId, int64_t> Scalars;
  std::unordered_map<SymbolId, std::shared_ptr<const ArrayBinding>> Arrays;
};

/// Evaluates \p E under \p B; returns nullopt when a symbol is unbound or an
/// array access is out of bounds.
std::optional<int64_t> tryEval(const Expr *E, const Bindings &B);

/// Evaluates \p E under \p B; asserts that evaluation succeeds.
int64_t eval(const Expr *E, const Bindings &B);

} // namespace sym
} // namespace halo

#endif // HALO_SYM_EVAL_H
