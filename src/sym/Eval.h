//===- sym/Eval.h - Concrete evaluation of symbolic expressions -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bindings map symbols to runtime values (scalars and integer index
/// arrays); the evaluator computes the concrete value of an expression.
/// This is the mechanism behind every *dynamic* test in the paper: the
/// extracted predicate program is interpreted against the loop's live-in
/// values instead of being compiled to Fortran.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SYM_EVAL_H
#define HALO_SYM_EVAL_H

#include "sym/Expr.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace halo {
namespace sym {

/// Runtime value of an index array: Fortran-style, indexed from Lo.
struct ArrayBinding {
  int64_t Lo = 1;
  std::vector<int64_t> Vals;

  bool inBounds(int64_t I) const {
    return I >= Lo && I < Lo + static_cast<int64_t>(Vals.size());
  }
  int64_t at(int64_t I) const { return Vals[static_cast<size_t>(I - Lo)]; }
};

/// Identity stamp of a Bindings object at a point in time. Two equal
/// stamps guarantee the *same live object, unmutated in between*: the Id
/// half is drawn from a process-global counter at construction (never
/// reused, not even by an object reincarnated at the same address) and the
/// Mut half counts mutations. Pooled evaluation frames
/// (pdag::CompiledPred::PooledFrame) compare stamps to skip symbol
/// re-binding across repeated evaluations against unchanged bindings.
struct BindingsStamp {
  uint64_t Id = 0;
  uint64_t Mut = 0;
  bool operator==(const BindingsStamp &O) const {
    return Id == O.Id && Mut == O.Mut;
  }
  bool operator!=(const BindingsStamp &O) const { return !(*this == O); }
};

/// Maps symbols to concrete runtime values. Index arrays are held behind
/// shared immutable storage so copying a Bindings (one per worker thread
/// in the parallel executor) is cheap.
///
/// Every object carries a BindingsStamp; copies get a fresh identity (a
/// stamp never survives into an object with potentially different
/// content or lifetime), and mutation bumps the cheap non-atomic Mut
/// counter — setScalar sits on the interpreted-loop hot path, so no
/// atomic is touched there.
class Bindings {
public:
  Bindings() : Id(nextId()) {}
  Bindings(const Bindings &O)
      : Scalars(O.Scalars), Arrays(O.Arrays), Id(nextId()) {}
  Bindings &operator=(const Bindings &O) {
    Scalars = O.Scalars;
    Arrays = O.Arrays;
    ++Mut;
    return *this;
  }

  void setScalar(SymbolId S, int64_t V) {
    Scalars[S] = V;
    ++Mut;
  }
  void clearScalar(SymbolId S) {
    Scalars.erase(S);
    ++Mut;
  }
  void setArray(SymbolId S, ArrayBinding A) {
    Arrays[S] = std::make_shared<ArrayBinding>(std::move(A));
    ++Mut;
  }

  BindingsStamp stamp() const { return BindingsStamp{Id, Mut}; }

  std::optional<int64_t> scalar(SymbolId S) const {
    auto It = Scalars.find(S);
    if (It == Scalars.end())
      return std::nullopt;
    return It->second;
  }
  const ArrayBinding *array(SymbolId S) const {
    auto It = Arrays.find(S);
    return It == Arrays.end() ? nullptr : It->second.get();
  }

private:
  static uint64_t nextId() {
    static std::atomic<uint64_t> Counter{1};
    return Counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::unordered_map<SymbolId, int64_t> Scalars;
  std::unordered_map<SymbolId, std::shared_ptr<const ArrayBinding>> Arrays;
  uint64_t Id = 0;
  uint64_t Mut = 0;
};

/// Evaluates \p E under \p B; returns nullopt when a symbol is unbound or an
/// array access is out of bounds.
std::optional<int64_t> tryEval(const Expr *E, const Bindings &B);

/// Evaluates \p E under \p B; asserts that evaluation succeeds.
int64_t eval(const Expr *E, const Bindings &B);

} // namespace sym
} // namespace halo

#endif // HALO_SYM_EVAL_H
