//===- sym/Expr.cpp - Canonical symbolic integer expressions --------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "sym/Expr.h"

#include "support/Error.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

using namespace halo;
using namespace halo::sym;

//===----------------------------------------------------------------------===//
// Expr queries
//===----------------------------------------------------------------------===//

bool Expr::dependsOn(SymbolId S) const {
  return std::binary_search(FreeSyms.begin(), FreeSyms.end(), S);
}

bool Expr::isInvariantAtDepth(int LoopDepth, const Context &Ctx) const {
  for (SymbolId S : FreeSyms)
    if (Ctx.symbolInfo(S).DefLevel >= LoopDepth)
      return false;
  return true;
}

std::string Expr::toString(const Context &Ctx) const {
  std::ostringstream OS;
  print(OS, Ctx);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Structural equality for interning
//===----------------------------------------------------------------------===//

static bool nodesEqual(const Expr *A, const Expr *B) {
  if (A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case ExprKind::IntConst:
    return cast<IntConstExpr>(A)->getValue() ==
           cast<IntConstExpr>(B)->getValue();
  case ExprKind::SymRef:
    return cast<SymRefExpr>(A)->getSymbol() == cast<SymRefExpr>(B)->getSymbol();
  case ExprKind::ArrayRef: {
    const auto *RA = cast<ArrayRefExpr>(A), *RB = cast<ArrayRefExpr>(B);
    return RA->getArray() == RB->getArray() &&
           RA->getIndex() == RB->getIndex();
  }
  case ExprKind::Min:
  case ExprKind::Max: {
    const auto *MA = cast<MinMaxExpr>(A), *MB = cast<MinMaxExpr>(B);
    return MA->getLHS() == MB->getLHS() && MA->getRHS() == MB->getRHS();
  }
  case ExprKind::FloorDiv:
  case ExprKind::Mod: {
    const auto *DA = cast<DivModExpr>(A), *DB = cast<DivModExpr>(B);
    return DA->getOperand() == DB->getOperand() &&
           DA->getDivisor() == DB->getDivisor();
  }
  case ExprKind::Mul:
    return cast<MulExpr>(A)->getFactors() == cast<MulExpr>(B)->getFactors();
  case ExprKind::Add: {
    const auto *AA = cast<AddExpr>(A), *AB = cast<AddExpr>(B);
    if (AA->getConstant() != AB->getConstant() ||
        AA->getTerms().size() != AB->getTerms().size())
      return false;
    for (size_t I = 0, E = AA->getTerms().size(); I != E; ++I)
      if (AA->getTerms()[I].Prod != AB->getTerms()[I].Prod ||
          AA->getTerms()[I].Coeff != AB->getTerms()[I].Coeff)
        return false;
    return true;
  }
  }
  halo_unreachable("covered switch");
}

static size_t hashNode(const Expr *E) {
  size_t H = static_cast<size_t>(E->getKind()) * 0x9e3779b9u;
  switch (E->getKind()) {
  case ExprKind::IntConst:
    hashCombine(H, static_cast<size_t>(cast<IntConstExpr>(E)->getValue()));
    break;
  case ExprKind::SymRef:
    hashCombine(H, static_cast<size_t>(cast<SymRefExpr>(E)->getSymbol()));
    break;
  case ExprKind::ArrayRef: {
    const auto *R = cast<ArrayRefExpr>(E);
    hashCombine(H, static_cast<size_t>(R->getArray()));
    hashCombine(H, R->getIndex());
    break;
  }
  case ExprKind::Min:
  case ExprKind::Max: {
    const auto *M = cast<MinMaxExpr>(E);
    hashCombine(H, M->getLHS());
    hashCombine(H, M->getRHS());
    break;
  }
  case ExprKind::FloorDiv:
  case ExprKind::Mod: {
    const auto *D = cast<DivModExpr>(E);
    hashCombine(H, D->getOperand());
    hashCombine(H, static_cast<size_t>(D->getDivisor()));
    break;
  }
  case ExprKind::Mul:
    for (const Expr *F : cast<MulExpr>(E)->getFactors())
      hashCombine(H, F);
    break;
  case ExprKind::Add: {
    const auto *A = cast<AddExpr>(E);
    hashCombine(H, static_cast<size_t>(A->getConstant()));
    for (const Monomial &M : A->getTerms()) {
      hashCombine(H, M.Prod);
      hashCombine(H, static_cast<size_t>(M.Coeff));
    }
    break;
  }
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Context: symbols
//===----------------------------------------------------------------------===//

Context::Context() = default;
Context::~Context() = default;

SymbolId Context::symbol(const std::string &Name, int DefLevel, bool IsArray) {
  // Get-or-create: DefLevel/IsArray apply only on first creation; later
  // lookups by name (e.g. from data-setup code) ignore them.
  auto It = SymbolByName.find(Name);
  if (It != SymbolByName.end())
    return It->second;
  SymbolId Id = static_cast<SymbolId>(Symbols.size());
  Symbols.push_back(Symbol{Id, Name, IsArray, DefLevel});
  SymbolByName.emplace(Name, Id);
  return Id;
}

SymbolId Context::freshSymbol(const std::string &Base, int DefLevel) {
  std::string Name = Base + "@" + std::to_string(++FreshCounter);
  while (SymbolByName.count(Name))
    Name = Base + "@" + std::to_string(++FreshCounter);
  return symbol(Name, DefLevel);
}

const Symbol &Context::symbolInfo(SymbolId Id) const {
  assert(Id < Symbols.size() && "invalid symbol id");
  return Symbols[Id];
}

bool Context::findSymbol(const std::string &Name, SymbolId &Out) const {
  auto It = SymbolByName.find(Name);
  if (It == SymbolByName.end())
    return false;
  Out = It->second;
  return true;
}

void Context::setDefLevel(SymbolId Id, int DefLevel) {
  assert(Id < Symbols.size() && "invalid symbol id");
  Symbols[Id].DefLevel = DefLevel;
}

void Context::setMonotoneArray(SymbolId Id, bool Monotone) {
  assert(Id < Symbols.size() && Symbols[Id].IsArray &&
         "monotonicity applies to index arrays");
  Symbols[Id].MonotoneArray = Monotone;
}

//===----------------------------------------------------------------------===//
// Context: interning
//===----------------------------------------------------------------------===//

const Expr *Context::intern(std::unique_ptr<Expr> Node, size_t Hash) {
  auto Range = InternTable.equal_range(Hash);
  for (auto It = Range.first; It != Range.second; ++It)
    if (nodesEqual(It->second, Node.get()))
      return It->second;
  Node->Id = static_cast<uint32_t>(Nodes.size());
  const Expr *Raw = Node.get();
  Nodes.push_back(std::move(Node));
  InternTable.emplace(Hash, Raw);
  return Raw;
}

std::vector<SymbolId> Context::unionSyms(const std::vector<SymbolId> &A,
                                         const std::vector<SymbolId> &B) {
  std::vector<SymbolId> Out;
  Out.reserve(A.size() + B.size());
  std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                 std::back_inserter(Out));
  return Out;
}

//===----------------------------------------------------------------------===//
// Context: leaf constructors
//===----------------------------------------------------------------------===//

const Expr *Context::intConst(int64_t V) {
  std::unique_ptr<Expr> N(new IntConstExpr(0, V));
  size_t H = hashNode(N.get());
  return intern(std::move(N), H);
}

const Expr *Context::symRef(SymbolId S) {
  assert(!symbolInfo(S).IsArray && "use arrayRef for array symbols");
  std::unique_ptr<Expr> N(new SymRefExpr(0, S));
  size_t H = hashNode(N.get());
  return intern(std::move(N), H);
}

const Expr *Context::symRef(const std::string &Name) {
  return symRef(symbol(Name));
}

const Expr *Context::arrayRef(SymbolId Arr, const Expr *Index) {
  assert(symbolInfo(Arr).IsArray && "arrayRef of a scalar symbol");
  std::vector<SymbolId> Free = unionSyms({Arr}, Index->freeSymbols());
  std::unique_ptr<Expr> N(new ArrayRefExpr(0, Arr, Index, std::move(Free)));
  size_t H = hashNode(N.get());
  return intern(std::move(N), H);
}

//===----------------------------------------------------------------------===//
// Context: linear-form algebra
//===----------------------------------------------------------------------===//

LinearForm Context::toLinear(const Expr *E) const {
  LinearForm LF;
  if (const auto *C = dyn_cast<IntConstExpr>(E)) {
    LF.Constant = C->getValue();
    return LF;
  }
  if (const auto *A = dyn_cast<AddExpr>(E)) {
    LF.Terms = A->getTerms();
    LF.Constant = A->getConstant();
    return LF;
  }
  LF.Terms.push_back(Monomial{E, 1});
  return LF;
}

const Expr *Context::fromLinear(LinearForm LF) {
  // Canonicalize: sort by product id, merge, drop zero coefficients.
  std::sort(LF.Terms.begin(), LF.Terms.end(),
            [](const Monomial &A, const Monomial &B) {
              return A.Prod->getId() < B.Prod->getId();
            });
  std::vector<Monomial> Merged;
  Merged.reserve(LF.Terms.size());
  for (const Monomial &M : LF.Terms) {
    if (M.Coeff == 0)
      continue;
    if (!Merged.empty() && Merged.back().Prod == M.Prod)
      Merged.back().Coeff += M.Coeff;
    else
      Merged.push_back(M);
  }
  Merged.erase(std::remove_if(Merged.begin(), Merged.end(),
                              [](const Monomial &M) { return M.Coeff == 0; }),
               Merged.end());

  if (Merged.empty())
    return intConst(LF.Constant);
  if (Merged.size() == 1 && Merged[0].Coeff == 1 && LF.Constant == 0)
    return Merged[0].Prod;

  std::vector<SymbolId> Free;
  for (const Monomial &M : Merged)
    Free = unionSyms(Free, M.Prod->freeSymbols());
  std::unique_ptr<Expr> N(
      new AddExpr(0, std::move(Merged), LF.Constant, std::move(Free)));
  size_t H = hashNode(N.get());
  return intern(std::move(N), H);
}

const Expr *Context::makeProduct(std::vector<const Expr *> Factors) {
  assert(!Factors.empty() && "empty product");
  if (Factors.size() == 1)
    return Factors[0];
  std::sort(Factors.begin(), Factors.end(),
            [](const Expr *A, const Expr *B) { return A->getId() < B->getId(); });
  std::vector<SymbolId> Free;
  for (const Expr *F : Factors) {
    assert(!isa<AddExpr>(F) && !isa<IntConstExpr>(F) && !isa<MulExpr>(F) &&
           "product factors must be atoms");
    Free = unionSyms(Free, F->freeSymbols());
  }
  std::unique_ptr<Expr> N(new MulExpr(0, std::move(Factors), std::move(Free)));
  size_t H = hashNode(N.get());
  return intern(std::move(N), H);
}

const Expr *Context::add(const Expr *A, const Expr *B) {
  LinearForm LA = toLinear(A), LB = toLinear(B);
  LA.Constant += LB.Constant;
  LA.Terms.insert(LA.Terms.end(), LB.Terms.begin(), LB.Terms.end());
  return fromLinear(std::move(LA));
}

const Expr *Context::sub(const Expr *A, const Expr *B) {
  return add(A, neg(B));
}

const Expr *Context::neg(const Expr *A) { return mulConst(A, -1); }

const Expr *Context::mulConst(const Expr *A, int64_t C) {
  if (C == 0)
    return intConst(0);
  if (C == 1)
    return A;
  LinearForm LF = toLinear(A);
  LF.Constant *= C;
  for (Monomial &M : LF.Terms)
    M.Coeff *= C;
  return fromLinear(std::move(LF));
}

const Expr *Context::addConst(const Expr *A, int64_t C) {
  if (C == 0)
    return A;
  LinearForm LF = toLinear(A);
  LF.Constant += C;
  return fromLinear(std::move(LF));
}

static void appendFactors(const Expr *Prod, std::vector<const Expr *> &Out) {
  if (const auto *M = dyn_cast<MulExpr>(Prod))
    Out.insert(Out.end(), M->getFactors().begin(), M->getFactors().end());
  else
    Out.push_back(Prod);
}

const Expr *Context::mul(const Expr *A, const Expr *B) {
  // Fast paths for constants.
  if (auto CA = constValue(A))
    return mulConst(B, *CA);
  if (auto CB = constValue(B))
    return mulConst(A, *CB);

  LinearForm LA = toLinear(A), LB = toLinear(B);
  LinearForm Out;
  Out.Constant = 0; // Both have at least one term or constant; expand fully.

  // constant * constant
  Out.Constant += LA.Constant * LB.Constant;
  // constant * terms
  for (const Monomial &M : LB.Terms)
    if (LA.Constant != 0)
      Out.Terms.push_back(Monomial{M.Prod, M.Coeff * LA.Constant});
  for (const Monomial &M : LA.Terms)
    if (LB.Constant != 0)
      Out.Terms.push_back(Monomial{M.Prod, M.Coeff * LB.Constant});
  // terms * terms
  for (const Monomial &MA : LA.Terms)
    for (const Monomial &MB : LB.Terms) {
      std::vector<const Expr *> Factors;
      appendFactors(MA.Prod, Factors);
      appendFactors(MB.Prod, Factors);
      Out.Terms.push_back(Monomial{makeProduct(std::move(Factors)),
                                   MA.Coeff * MB.Coeff});
    }
  return fromLinear(std::move(Out));
}

const Expr *Context::min(const Expr *A, const Expr *B) {
  if (A == B)
    return A;
  auto CA = constValue(A), CB = constValue(B);
  if (CA && CB)
    return intConst(std::min(*CA, *CB));
  // Fold min(A, A + c): the difference decides.
  if (auto DC = constValue(sub(A, B)))
    return *DC <= 0 ? A : B;
  if (B->getId() < A->getId())
    std::swap(A, B);
  std::vector<SymbolId> Free =
      unionSyms(A->freeSymbols(), B->freeSymbols());
  std::unique_ptr<Expr> N(
      new MinMaxExpr(ExprKind::Min, 0, A, B, std::move(Free)));
  size_t H = hashNode(N.get());
  return intern(std::move(N), H);
}

const Expr *Context::max(const Expr *A, const Expr *B) {
  if (A == B)
    return A;
  auto CA = constValue(A), CB = constValue(B);
  if (CA && CB)
    return intConst(std::max(*CA, *CB));
  if (auto DC = constValue(sub(A, B)))
    return *DC >= 0 ? A : B;
  if (B->getId() < A->getId())
    std::swap(A, B);
  std::vector<SymbolId> Free =
      unionSyms(A->freeSymbols(), B->freeSymbols());
  std::unique_ptr<Expr> N(
      new MinMaxExpr(ExprKind::Max, 0, A, B, std::move(Free)));
  size_t H = hashNode(N.get());
  return intern(std::move(N), H);
}

static int64_t floorDivInt(int64_t A, int64_t D) {
  assert(D > 0 && "divisor must be positive");
  int64_t Q = A / D;
  if ((A % D) != 0 && A < 0)
    --Q;
  return Q;
}

const Expr *Context::floorDiv(const Expr *A, int64_t D) {
  assert(D > 0 && "divisor must be positive");
  if (D == 1)
    return A;
  if (auto CA = constValue(A))
    return intConst(floorDivInt(*CA, D));
  if (definitelyDivisibleBy(A, D)) {
    LinearForm LF = toLinear(A);
    LF.Constant /= D;
    for (Monomial &M : LF.Terms)
      M.Coeff /= D;
    return fromLinear(std::move(LF));
  }
  std::unique_ptr<Expr> N(new DivModExpr(ExprKind::FloorDiv, 0, A, D,
                                         std::vector<SymbolId>(
                                             A->freeSymbols())));
  size_t H = hashNode(N.get());
  return intern(std::move(N), H);
}

const Expr *Context::mod(const Expr *A, int64_t D) {
  assert(D > 0 && "divisor must be positive");
  if (D == 1)
    return intConst(0);
  if (auto CA = constValue(A))
    return intConst(*CA - floorDivInt(*CA, D) * D);
  if (definitelyDivisibleBy(A, D))
    return intConst(0);
  std::unique_ptr<Expr> N(new DivModExpr(ExprKind::Mod, 0, A, D,
                                         std::vector<SymbolId>(
                                             A->freeSymbols())));
  size_t H = hashNode(N.get());
  return intern(std::move(N), H);
}

//===----------------------------------------------------------------------===//
// Context: queries
//===----------------------------------------------------------------------===//

std::optional<int64_t> Context::constValue(const Expr *E) const {
  if (const auto *C = dyn_cast<IntConstExpr>(E))
    return C->getValue();
  return std::nullopt;
}

bool Context::definitelyDivisibleBy(const Expr *E, int64_t D) const {
  assert(D != 0 && "division by zero");
  if (D == 1 || D == -1)
    return true;
  LinearForm LF = toLinear(E);
  if (LF.Constant % D != 0)
    return false;
  for (const Monomial &M : LF.Terms)
    if (M.Coeff % D != 0)
      return false;
  return true;
}

int64_t Context::coeffGcd(const Expr *E) const {
  LinearForm LF = toLinear(E);
  int64_t G = 0;
  for (const Monomial &M : LF.Terms)
    G = std::gcd(G, M.Coeff);
  return G;
}

std::optional<Context::LinearSplit> Context::splitLinearIn(const Expr *E,
                                                           SymbolId Sym) {
  if (!E->dependsOn(Sym))
    return LinearSplit{intConst(0), E};
  LinearForm LF = toLinear(E);
  LinearForm FormA, FormB;
  FormB.Constant = LF.Constant;
  const Expr *SymE = symRef(Sym);
  for (const Monomial &M : LF.Terms) {
    if (!M.Prod->dependsOn(Sym)) {
      FormB.Terms.push_back(M);
      continue;
    }
    // The product must contain Sym as a direct factor; dividing one factor
    // of Sym out must leave factors free of embedded occurrences.
    std::vector<const Expr *> Factors;
    appendFactors(M.Prod, Factors);
    auto It = std::find(Factors.begin(), Factors.end(), SymE);
    if (It == Factors.end())
      return std::nullopt; // Sym occurs inside an opaque atom.
    Factors.erase(It);
    if (Factors.empty()) {
      FormA.Constant += M.Coeff;
      continue;
    }
    FormA.Terms.push_back(Monomial{makeProduct(std::move(Factors)), M.Coeff});
  }
  return LinearSplit{fromLinear(std::move(FormA)), fromLinear(std::move(FormB))};
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

namespace {
class Substituter {
public:
  Substituter(Context &Ctx, const std::map<SymbolId, const Expr *> &Map)
      : Ctx(Ctx), Map(Map) {}

  const Expr *visit(const Expr *E) {
    // Fast path: no mapped symbol occurs in E.
    bool Touches = false;
    for (const auto &KV : Map)
      if (E->dependsOn(KV.first)) {
        Touches = true;
        break;
      }
    if (!Touches)
      return E;
    auto It = Memo.find(E);
    if (It != Memo.end())
      return It->second;
    const Expr *R = rebuild(E);
    Memo.emplace(E, R);
    return R;
  }

private:
  const Expr *rebuild(const Expr *E) {
    switch (E->getKind()) {
    case ExprKind::IntConst:
      return E;
    case ExprKind::SymRef: {
      auto It = Map.find(cast<SymRefExpr>(E)->getSymbol());
      return It == Map.end() ? E : It->second;
    }
    case ExprKind::ArrayRef: {
      const auto *R = cast<ArrayRefExpr>(E);
      return Ctx.arrayRef(R->getArray(), visit(R->getIndex()));
    }
    case ExprKind::Min: {
      const auto *M = cast<MinMaxExpr>(E);
      return Ctx.min(visit(M->getLHS()), visit(M->getRHS()));
    }
    case ExprKind::Max: {
      const auto *M = cast<MinMaxExpr>(E);
      return Ctx.max(visit(M->getLHS()), visit(M->getRHS()));
    }
    case ExprKind::FloorDiv: {
      const auto *D = cast<DivModExpr>(E);
      return Ctx.floorDiv(visit(D->getOperand()), D->getDivisor());
    }
    case ExprKind::Mod: {
      const auto *D = cast<DivModExpr>(E);
      return Ctx.mod(visit(D->getOperand()), D->getDivisor());
    }
    case ExprKind::Mul: {
      const auto *M = cast<MulExpr>(E);
      const Expr *Acc = Ctx.intConst(1);
      for (const Expr *F : M->getFactors())
        Acc = Ctx.mul(Acc, visit(F));
      return Acc;
    }
    case ExprKind::Add: {
      const auto *A = cast<AddExpr>(E);
      const Expr *Acc = Ctx.intConst(A->getConstant());
      for (const Monomial &M : A->getTerms())
        Acc = Ctx.add(Acc, Ctx.mulConst(visit(M.Prod), M.Coeff));
      return Acc;
    }
    }
    halo_unreachable("covered switch");
  }

  Context &Ctx;
  const std::map<SymbolId, const Expr *> &Map;
  std::unordered_map<const Expr *, const Expr *> Memo;
};
} // namespace

const Expr *Context::substitute(const Expr *E,
                                const std::map<SymbolId, const Expr *> &Map) {
  if (Map.empty())
    return E;
  Substituter S(*this, Map);
  return S.visit(E);
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

void Expr::print(std::ostream &OS, const Context &Ctx) const {
  switch (Kind) {
  case ExprKind::IntConst:
    OS << cast<IntConstExpr>(this)->getValue();
    return;
  case ExprKind::SymRef:
    OS << Ctx.symbolInfo(cast<SymRefExpr>(this)->getSymbol()).Name;
    return;
  case ExprKind::ArrayRef: {
    const auto *R = cast<ArrayRefExpr>(this);
    OS << Ctx.symbolInfo(R->getArray()).Name << "(";
    R->getIndex()->print(OS, Ctx);
    OS << ")";
    return;
  }
  case ExprKind::Min:
  case ExprKind::Max: {
    const auto *M = cast<MinMaxExpr>(this);
    OS << (M->isMin() ? "min(" : "max(");
    M->getLHS()->print(OS, Ctx);
    OS << ", ";
    M->getRHS()->print(OS, Ctx);
    OS << ")";
    return;
  }
  case ExprKind::FloorDiv:
  case ExprKind::Mod: {
    const auto *D = cast<DivModExpr>(this);
    OS << (D->isDiv() ? "div(" : "mod(");
    D->getOperand()->print(OS, Ctx);
    OS << ", " << D->getDivisor() << ")";
    return;
  }
  case ExprKind::Mul: {
    const auto *M = cast<MulExpr>(this);
    bool First = true;
    for (const Expr *F : M->getFactors()) {
      if (!First)
        OS << "*";
      First = false;
      F->print(OS, Ctx);
    }
    return;
  }
  case ExprKind::Add: {
    const auto *A = cast<AddExpr>(this);
    bool First = true;
    for (const Monomial &M : A->getTerms()) {
      if (!First)
        OS << (M.Coeff >= 0 ? " + " : " - ");
      else if (M.Coeff < 0)
        OS << "-";
      First = false;
      int64_t AbsC = M.Coeff < 0 ? -M.Coeff : M.Coeff;
      if (AbsC != 1)
        OS << AbsC << "*";
      M.Prod->print(OS, Ctx);
    }
    int64_t C = A->getConstant();
    if (C != 0 || First) {
      if (!First)
        OS << (C >= 0 ? " + " : " - ");
      else if (C < 0)
        OS << "-";
      OS << (C < 0 ? -C : C);
    }
    return;
  }
  }
  halo_unreachable("covered switch");
}

std::ostream &sym::operator<<(std::ostream &OS,
                              const std::pair<const Expr *, const Context *> &P) {
  P.first->print(OS, *P.second);
  return OS;
}
