//===- sym/Range.h - Symbolic ranges for bounded symbols -------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A RangeEnv records inclusive symbolic bounds for symbols whose value is
/// confined to an interval — chiefly loop indexes (`1 <= i <= N`). The
/// Fourier-Motzkin eliminator (Fig. 6b of the paper) consults it to pick the
/// symbol to eliminate, and the LMAD invariant-overestimation path uses it
/// to widen loop-variant offsets.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SYM_RANGE_H
#define HALO_SYM_RANGE_H

#include "sym/Expr.h"

#include <optional>
#include <unordered_map>

namespace halo {
namespace sym {

/// Inclusive symbolic interval [Lo, Hi].
struct Range {
  const Expr *Lo = nullptr;
  const Expr *Hi = nullptr;
};

/// Maps bounded symbols to their symbolic ranges.
class RangeEnv {
public:
  void bind(SymbolId S, const Expr *Lo, const Expr *Hi) {
    Map[S] = Range{Lo, Hi};
  }
  void unbind(SymbolId S) { Map.erase(S); }
  const Range *lookup(SymbolId S) const {
    auto It = Map.find(S);
    return It == Map.end() ? nullptr : &It->second;
  }
  bool empty() const { return Map.empty(); }
  const std::unordered_map<SymbolId, Range> &entries() const { return Map; }

private:
  std::unordered_map<SymbolId, Range> Map;
};

/// Computes a symbolic lower (IsLower) or upper bound of \p E over \p Env by
/// substituting range endpoints into monomials whose coefficient sign is
/// known. Returns nullopt when a bounded symbol occurs with unknown-sign
/// coefficient or inside an opaque atom (conservative failure).
std::optional<const Expr *> boundExpr(Context &Ctx, const Expr *E,
                                      const RangeEnv &Env, bool IsLower);

} // namespace sym
} // namespace halo

#endif // HALO_SYM_RANGE_H
