//===- rt/Executor.cpp - Runtime: conditional parallel execution ----------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "rt/Executor.h"

#include "pdag/PredEval.h"
#include "support/Error.h"
#include "support/Hashing.h"
#include "usr/USREval.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <utility>

using namespace halo;
using namespace halo::rt;
using namespace halo::ir;
using analysis::ArrayPlan;
using analysis::LoopPlan;
using analysis::TestCascade;
using sym::SymbolId;

namespace {

double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Deterministic synthetic per-statement work (models loop granularity).
double spinWork(unsigned N, double Seed) {
  double X = Seed;
  for (unsigned K = 0; K < N; ++K)
    X = X * 1.0000001 + 1e-9;
  return X;
}

/// LRPD shadow state for one array (Sec. 5 / [25]): last-writer iteration
/// per element plus a global conflict flag.
struct Shadow {
  std::unique_ptr<std::atomic<int64_t>[]> Writer; // -1 none.
  std::unique_ptr<std::atomic<int64_t>[]> Reader; // -1 none (exposed).
  size_t Size = 0;

  explicit Shadow(size_t N) : Size(N) {
    Writer.reset(new std::atomic<int64_t>[N]);
    Reader.reset(new std::atomic<int64_t>[N]);
    for (size_t I = 0; I < N; ++I) {
      Writer[I].store(-1, std::memory_order_relaxed);
      Reader[I].store(-1, std::memory_order_relaxed);
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Execution state
//===----------------------------------------------------------------------===//

struct Executor::ExecState {
  Memory &M;
  sym::Bindings B;

  /// Call-site array aliasing: formal -> (array, offset) at call time.
  std::map<SymbolId, std::pair<SymbolId, int64_t>> Alias;

  /// Privatization redirects: base array -> thread-private buffer.
  std::map<SymbolId, std::vector<double> *> Redirect;
  /// Reduction private buffers (additive, zero-initialized).
  std::map<SymbolId, std::vector<double> *> RedBuf;
  /// Per-element write masks for SLV arrays.
  std::map<SymbolId, std::vector<uint8_t> *> WrittenMask;
  /// DLV tracking: last writing iteration + value per element.
  struct DlvBuf {
    std::vector<int64_t> LastIter;
    std::vector<double> Val;
  };
  std::map<SymbolId, DlvBuf *> Dlv;

  /// LRPD shadows (speculative runs only).
  std::map<SymbolId, Shadow *> Shadows;
  std::atomic<bool> *Conflict = nullptr;

  int64_t CurrentIter = 0;

  explicit ExecState(Memory &M, const sym::Bindings &Bind) : M(M), B(Bind) {}

  /// Resolves a (possibly formal) array + offset through the alias chain.
  std::pair<SymbolId, int64_t> resolve(SymbolId Arr, int64_t Off) const {
    auto It = Alias.find(Arr);
    while (It != Alias.end()) {
      Off += It->second.second;
      Arr = It->second.first;
      It = Alias.find(Arr);
    }
    return {Arr, Off};
  }

  double load(SymbolId Arr, int64_t Off) {
    auto [Base, Idx] = resolve(Arr, Off);
    if (auto SIt = Shadows.find(Base); SIt != Shadows.end()) {
      Shadow &S = *SIt->second;
      if (Idx >= 0 && static_cast<size_t>(Idx) < S.Size) {
        int64_t W = S.Writer[Idx].load(std::memory_order_relaxed);
        if (W == -1) {
          // Exposed read (no write seen yet in this iteration's view).
          S.Reader[Idx].store(CurrentIter, std::memory_order_relaxed);
        } else if (W != CurrentIter) {
          Conflict->store(true, std::memory_order_relaxed);
        }
      }
    }
    std::vector<double> *V = nullptr;
    if (auto RIt = Redirect.find(Base); RIt != Redirect.end())
      V = RIt->second;
    else
      V = M.find(Base);
    assert(V && "load from unallocated array");
    assert(Idx >= 0 && static_cast<size_t>(Idx) < V->size() &&
           "array load out of bounds");
    return (*V)[Idx];
  }

  void store(SymbolId Arr, int64_t Off, double Val, bool IsReduction) {
    auto [Base, Idx] = resolve(Arr, Off);
    if (auto SIt = Shadows.find(Base); SIt != Shadows.end()) {
      Shadow &S = *SIt->second;
      if (Idx >= 0 && static_cast<size_t>(Idx) < S.Size) {
        int64_t Expected = -1;
        if (!S.Writer[Idx].compare_exchange_strong(
                Expected, CurrentIter, std::memory_order_relaxed) &&
            Expected != CurrentIter)
          Conflict->store(true, std::memory_order_relaxed);
        int64_t R = S.Reader[Idx].load(std::memory_order_relaxed);
        if (R != -1 && R != CurrentIter)
          Conflict->store(true, std::memory_order_relaxed);
      }
    }
    if (IsReduction) {
      if (auto RIt = RedBuf.find(Base); RIt != RedBuf.end()) {
        auto &V = *RIt->second;
        assert(Idx >= 0 && static_cast<size_t>(Idx) < V.size());
        V[Idx] += Val;
        return;
      }
      // Direct (injective) reduction update on the shared array.
      std::vector<double> *V = M.find(Base);
      assert(V && Idx >= 0 && static_cast<size_t>(Idx) < V->size());
      (*V)[Idx] += Val;
      return;
    }
    std::vector<double> *V = nullptr;
    if (auto RIt = Redirect.find(Base); RIt != Redirect.end())
      V = RIt->second;
    else
      V = M.find(Base);
    assert(V && "store to unallocated array");
    assert(Idx >= 0 && static_cast<size_t>(Idx) < V->size() &&
           "array store out of bounds");
    (*V)[Idx] = Val;
    if (auto WIt = WrittenMask.find(Base); WIt != WrittenMask.end())
      (*WIt->second)[Idx] = 1;
    if (auto DIt = Dlv.find(Base); DIt != Dlv.end()) {
      DlvBuf &D = *DIt->second;
      D.LastIter[Idx] = CurrentIter;
      D.Val[Idx] = Val;
    }
  }
};

//===----------------------------------------------------------------------===//
// Core interpreter
//===----------------------------------------------------------------------===//

void Executor::execStmt(const Stmt *S, ExecState &St) {
  switch (S->getKind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    double V = 1.0;
    for (const ArrayAccess &R : A->getReads()) {
      int64_t Off = sym::eval(R.Offset, St.B);
      V += 0.5 * St.load(R.Array, Off);
    }
    if (A->getWorkCost())
      V = spinWork(A->getWorkCost(), V);
    if (A->getWrite()) {
      int64_t Off = sym::eval(A->getWrite()->Offset, St.B);
      St.store(A->getWrite()->Array, Off, V, A->isReduction());
    }
    return;
  }
  case StmtKind::DoLoop: {
    const auto *L = cast<DoLoop>(S);
    int64_t Lo = sym::eval(L->getLo(), St.B);
    int64_t Hi = sym::eval(L->getHi(), St.B);
    auto Saved = St.B.scalar(L->getVar());
    for (int64_t I = Lo; I <= Hi; ++I) {
      St.B.setScalar(L->getVar(), I);
      for (const Stmt *C : L->getBody())
        execStmt(C, St);
    }
    if (Saved)
      St.B.setScalar(L->getVar(), *Saved);
    return;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    bool C = pdag::evalPred(I->getCond(), St.B);
    const auto &Branch = C ? I->getThen() : I->getElse();
    for (const Stmt *T : Branch)
      execStmt(T, St);
    return;
  }
  case StmtKind::Call: {
    const auto *C = cast<CallStmt>(S);
    // Bind formal scalars (evaluated in the caller's state).
    std::vector<std::pair<SymbolId, std::optional<int64_t>>> SavedScalars;
    for (const CallStmt::ScalarArg &A : C->getScalarArgs()) {
      SavedScalars.emplace_back(A.Formal, St.B.scalar(A.Formal));
      St.B.setScalar(A.Formal, sym::eval(A.Actual, St.B));
    }
    // Extend the alias map for formal arrays.
    std::vector<std::pair<SymbolId, std::optional<std::pair<SymbolId, int64_t>>>>
        SavedAlias;
    for (const CallStmt::ArrayArg &A : C->getArrayArgs()) {
      auto It = St.Alias.find(A.Formal);
      SavedAlias.emplace_back(
          A.Formal, It == St.Alias.end()
                        ? std::nullopt
                        : std::optional<std::pair<SymbolId, int64_t>>(
                              It->second));
      St.Alias[A.Formal] = {A.Actual, sym::eval(A.Offset, St.B)};
    }
    for (const Stmt *T : C->getCallee()->getBody())
      execStmt(T, St);
    for (auto &KV : SavedAlias) {
      if (KV.second)
        St.Alias[KV.first] = *KV.second;
      else
        St.Alias.erase(KV.first);
    }
    for (auto &KV : SavedScalars) {
      if (KV.second)
        St.B.setScalar(KV.first, *KV.second);
      // (Unbound formals simply keep the callee value; harmless.)
    }
    return;
  }
  case StmtKind::CivIncr: {
    const auto *CI = cast<CivIncrStmt>(S);
    int64_t Cur = St.B.scalar(CI->getCiv()).value_or(0);
    St.B.setScalar(CI->getCiv(), Cur + sym::eval(CI->getAmount(), St.B));
    return;
  }
  }
  halo_unreachable("covered switch");
}

void Executor::runStmts(const std::vector<const Stmt *> &Stmts, Memory &M,
                        sym::Bindings &B) {
  ExecState St(M, B);
  for (const Stmt *S : Stmts)
    execStmt(S, St);
  B = St.B; // Propagate scalar updates (CIV values etc.).
}

void Executor::runSequential(const DoLoop &Loop, Memory &M,
                             sym::Bindings &B) {
  ExecState St(M, B);
  execStmt(&Loop, St);
  B = St.B;
}

//===----------------------------------------------------------------------===//
// CIV-COMP slice
//===----------------------------------------------------------------------===//

/// True when the subtree contains any CIV update.
static bool containsCiv(const Stmt *S) {
  switch (S->getKind()) {
  case StmtKind::CivIncr:
    return true;
  case StmtKind::Assign:
  case StmtKind::Call:
    return false;
  case StmtKind::DoLoop: {
    for (const Stmt *C : cast<DoLoop>(S)->getBody())
      if (containsCiv(C))
        return true;
    return false;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    for (const Stmt *C : I->getThen())
      if (containsCiv(C))
        return true;
    for (const Stmt *C : I->getElse())
      if (containsCiv(C))
        return true;
    return false;
  }
  }
  halo_unreachable("covered switch");
}

void Executor::runCivSlice(const DoLoop &Loop, const summary::CivPlan &Plan,
                           Memory &M, sym::Bindings &B) {
  (void)M; // The slice touches only control flow, CIVs and index arrays.
  if (Plan.empty())
    return;
  int64_t Lo = sym::eval(Loop.getLo(), B);
  int64_t Hi = sym::eval(Loop.getHi(), B);
  int64_t N = Hi - Lo + 1;
  if (N < 0)
    N = 0;

  std::map<SymbolId, std::vector<int64_t>> Entry;   // Civ -> values.
  std::map<SymbolId, std::vector<int64_t>> JoinVal; // JoinArr -> values.
  for (const summary::CivDesc &D : Plan.Civs)
    Entry[D.Civ].assign(static_cast<size_t>(N) + 1, 0);
  for (const summary::CivJoin &J : Plan.Joins)
    JoinVal[J.JoinArr].assign(static_cast<size_t>(N), 0);

  sym::Bindings Slice = B;
  // Walks only control flow and CIV updates; records joins.
  std::function<void(const Stmt *, int64_t)> Walk =
      [&](const Stmt *S, int64_t IterIdx) {
        switch (S->getKind()) {
        case StmtKind::Assign:
        case StmtKind::Call:
          return;
        case StmtKind::CivIncr: {
          const auto *CI = cast<CivIncrStmt>(S);
          int64_t Cur = Slice.scalar(CI->getCiv()).value_or(0);
          Slice.setScalar(CI->getCiv(),
                          Cur + sym::eval(CI->getAmount(), Slice));
          return;
        }
        case StmtKind::DoLoop: {
          const auto *L = cast<DoLoop>(S);
          if (!containsCiv(L))
            return;
          int64_t L2 = sym::eval(L->getLo(), Slice);
          int64_t H2 = sym::eval(L->getHi(), Slice);
          for (int64_t J = L2; J <= H2; ++J) {
            Slice.setScalar(L->getVar(), J);
            for (const Stmt *C : L->getBody())
              Walk(C, IterIdx);
          }
          return;
        }
        case StmtKind::If: {
          const auto *I = cast<IfStmt>(S);
          bool C = pdag::evalPred(I->getCond(), Slice);
          for (const Stmt *T : C ? I->getThen() : I->getElse())
            Walk(T, IterIdx);
          // Record joined CIV values for this iteration.
          for (const summary::CivJoin &J : Plan.Joins)
            if (J.At == I)
              JoinVal[J.JoinArr][static_cast<size_t>(IterIdx)] =
                  Slice.scalar(J.Civ).value_or(0);
          return;
        }
        }
        halo_unreachable("covered switch");
      };

  for (int64_t I = Lo; I <= Hi; ++I) {
    size_t Idx = static_cast<size_t>(I - Lo);
    for (const summary::CivDesc &D : Plan.Civs)
      Entry[D.Civ][Idx] = Slice.scalar(D.Civ).value_or(0);
    Slice.setScalar(Loop.getVar(), I);
    for (const Stmt *S : Loop.getBody())
      Walk(S, static_cast<int64_t>(Idx));
  }
  for (const summary::CivDesc &D : Plan.Civs)
    Entry[D.Civ][static_cast<size_t>(N)] = Slice.scalar(D.Civ).value_or(0);

  // Publish the pseudo arrays (1-based on the iteration index).
  for (const summary::CivDesc &D : Plan.Civs) {
    sym::ArrayBinding A;
    A.Lo = Lo;
    A.Vals = std::move(Entry[D.Civ]);
    B.setArray(D.EntryArr, std::move(A));
  }
  for (const summary::CivJoin &J : Plan.Joins) {
    sym::ArrayBinding A;
    A.Lo = Lo;
    A.Vals = std::move(JoinVal[J.JoinArr]);
    B.setArray(J.JoinArr, std::move(A));
  }
}

//===----------------------------------------------------------------------===//
// BOUNDS-COMP
//===----------------------------------------------------------------------===//

static bool boundsOf(const usr::USR *S, sym::Bindings &B, int64_t &Lo,
                     int64_t &Hi, bool &Any) {
  using namespace halo::usr;
  switch (S->getKind()) {
  case USRKind::Empty:
    return true;
  case USRKind::Leaf: {
    for (const lmad::LMAD &L : cast<LeafUSR>(S)->getLMADs()) {
      auto Off = sym::tryEval(L.offset(), B);
      if (!Off)
        return false;
      int64_t Max = *Off;
      bool Empty = false;
      for (const lmad::Dim &D : L.dims()) {
        auto Sp = sym::tryEval(D.Span, B);
        if (!Sp)
          return false;
        if (*Sp < 0)
          Empty = true;
        else
          Max += *Sp;
      }
      if (Empty)
        continue;
      Lo = Any ? std::min(Lo, *Off) : *Off;
      Hi = Any ? std::max(Hi, Max) : Max;
      Any = true;
    }
    return true;
  }
  case USRKind::Union: {
    for (const usr::USR *C : cast<UnionUSR>(S)->getChildren())
      if (!boundsOf(C, B, Lo, Hi, Any))
        return false;
    return true;
  }
  case USRKind::CallSite:
    return boundsOf(cast<CallSiteUSR>(S)->getChild(), B, Lo, Hi, Any);
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(S);
    auto L2 = sym::tryEval(R->getLo(), B);
    auto H2 = sym::tryEval(R->getHi(), B);
    if (!L2 || !H2)
      return false;
    auto Saved = B.scalar(R->getVar());
    bool Ok = true;
    for (int64_t I = *L2; I <= *H2 && Ok; ++I) {
      B.setScalar(R->getVar(), I);
      Ok = boundsOf(R->getBody(), B, Lo, Hi, Any);
    }
    if (Saved)
      B.setScalar(R->getVar(), *Saved);
    return Ok;
  }
  case USRKind::Intersect:
  case USRKind::Subtract:
  case USRKind::Gate:
    halo_unreachable("bounds USR must be stripped (stripForBounds)");
  }
  halo_unreachable("covered switch");
}

bool Executor::computeBounds(const usr::USR *S, sym::Bindings &B,
                             ThreadPool &Pool, int64_t &Lo, int64_t &Hi) {
  // Parallel MIN/MAX reduction over the top-level recurrence (Fig. 7a).
  if (const auto *R = dyn_cast<usr::RecurUSR>(S)) {
    auto L2 = sym::tryEval(R->getLo(), B);
    auto H2 = sym::tryEval(R->getHi(), B);
    if (L2 && H2 && *H2 >= *L2) {
      unsigned NB = Pool.numThreads();
      std::vector<int64_t> Los(NB, 0), His(NB, 0);
      std::vector<uint8_t> Anys(NB, 0), Oks(NB, 1);
      Pool.parallelForBlocked(
          *L2, *H2 + 1, [&](int64_t BLo, int64_t BHi, unsigned T) {
            sym::Bindings Local = B;
            int64_t L3 = 0, H3 = 0;
            bool Any = false, Ok = true;
            for (int64_t I = BLo; I < BHi && Ok; ++I) {
              Local.setScalar(R->getVar(), I);
              Ok = boundsOf(R->getBody(), Local, L3, H3, Any);
            }
            Los[T] = L3;
            His[T] = H3;
            Anys[T] = Any;
            Oks[T] = Ok;
          });
      bool Any = false;
      for (unsigned T = 0; T < NB; ++T) {
        if (!Oks[T])
          return false;
        if (!Anys[T])
          continue;
        Lo = Any ? std::min(Lo, Los[T]) : Los[T];
        Hi = Any ? std::max(Hi, His[T]) : His[T];
        Any = true;
      }
      if (!Any) {
        Lo = 0;
        Hi = -1;
      }
      return true;
    }
  }
  bool Any = false;
  if (!boundsOf(S, B, Lo, Hi, Any))
    return false;
  if (!Any) {
    Lo = 0;
    Hi = -1;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// HoistCache
//===----------------------------------------------------------------------===//

std::optional<bool> HoistCache::emptiness(const usr::USR *S,
                                          sym::Bindings &B,
                                          const sym::Context &Ctx,
                                          bool &WasHit) {
  // Hash the values of the USR's free symbols (scalars + index arrays).
  size_t H = 0;
  for (sym::SymbolId Id : S->freeSymbols()) {
    const sym::Symbol &Info = Ctx.symbolInfo(Id);
    if (Info.IsArray) {
      const sym::ArrayBinding *A = B.array(Id);
      if (!A)
        return std::nullopt;
      hashCombine(H, static_cast<size_t>(A->Lo));
      hashRange(H, A->Vals.begin(), A->Vals.end());
    } else {
      auto V = B.scalar(Id);
      if (!V)
        continue; // Bound variables of inner recurrences.
      hashCombine(H, static_cast<size_t>(*V));
    }
  }
  auto Key = std::make_pair(S, static_cast<uint64_t>(H));
  auto It = Cache.find(Key);
  if (It != Cache.end()) {
    WasHit = true;
    return It->second;
  }
  WasHit = false;
  auto V = usr::evalUSREmpty(S, B);
  if (V)
    Cache.emplace(Key, *V);
  return V;
}

//===----------------------------------------------------------------------===//
// Planned execution (the governor)
//===----------------------------------------------------------------------===//

namespace {

/// Runtime decision for one array.
struct ArrayDecision {
  bool Privatize = false;
  bool UseSLV = false;
  bool UseDLV = false;
  bool ReductionPrivate = false;
};

} // namespace

const pdag::CompiledPred *Executor::compiledFor(const pdag::Pred *P) {
  auto It = CompileCache.find(P);
  if (It != CompileCache.end())
    return It->second.get();
  auto CP = pdag::CompiledPred::compile(P, Sym);
  return CompileCache.emplace(P, std::move(CP)).first->second.get();
}

int Executor::runCascade(const TestCascade &C, sym::Bindings &B,
                         ThreadPool &Pool, ExecStats &Stats) {
  if (C.StaticallyTrue)
    return -1;

  if (!UseCompiledPreds) {
    // Reference path: the tree-walking interpreter in cascade order.
    for (const pdag::CascadeStage &St : C.Stages) {
      pdag::EvalStats ES;
      ES.InterpEvals = 1;
      auto V = pdag::tryEvalPred(St.P, B, &ES);
      Stats.PredicateLeafEvals += ES.LeafEvals;
      Stats.InterpPredEvals += ES.InterpEvals;
      if (V && *V)
        return St.Depth;
    }
    return -2;
  }

  // Compiled path: stages are lowered once (cached across plans and
  // repeated executions) and re-ordered cheapest-first by the compiled
  // cost estimate; buildCascade orders by loop depth alone, the bytecode
  // length refines ties between same-depth stages.
  std::vector<std::pair<const pdag::CascadeStage *, const pdag::CompiledPred *>>
      Stages;
  Stages.reserve(C.Stages.size());
  for (const pdag::CascadeStage &St : C.Stages)
    Stages.emplace_back(&St, compiledFor(St.P));
  if (Stages.size() > 1)
    std::stable_sort(Stages.begin(), Stages.end(),
                     [](const auto &A, const auto &B) {
                       return A.second->costEstimate() <
                              B.second->costEstimate();
                     });
  for (const auto &[St, CP] : Stages) {
    pdag::EvalStats ES;
    // O(1) stages run inline; O(N)+ stages fan their root LoopAll range
    // out across the pool with the exact early-exit and-reduction.
    auto V = CP->loopDepth() >= 1 ? CP->evalParallel(B, Pool, &ES)
                                  : CP->eval(B, &ES);
    Stats.PredicateLeafEvals += ES.LeafEvals;
    Stats.PredMemoHits += ES.MemoHits;
    Stats.CompiledPredEvals += ES.CompiledEvals;
    if (V && *V)
      return St->Depth;
  }
  return -2;
}

ExecStats Executor::runPlanned(const LoopPlan &Plan, Memory &M,
                               sym::Bindings &B, ThreadPool &Pool,
                               HoistCache *Hoist) {
  ExecStats Stats;
  double T0 = nowSeconds();
  const DoLoop &Loop = *Plan.Loop;

  // Loops proven dependent (or abandoned by the static-only baseline)
  // execute sequentially without any dynamic machinery.
  if (Plan.Class == analysis::LoopClass::StaticSeq ||
      (!Plan.RuntimeTestsEnabled &&
       Plan.Class != analysis::LoopClass::StaticPar)) {
    ExecState St(M, B);
    execStmt(&Loop, St);
    B = St.B;
    Stats.TotalSeconds = nowSeconds() - T0;
    return Stats;
  }

  // CIV-COMP.
  if (!Plan.Civ.empty()) {
    double TS = nowSeconds();
    runCivSlice(Loop, Plan.Civ, M, B);
    Stats.CivSliceSeconds = nowSeconds() - TS;
  }

  // Per-array decisions.
  std::map<SymbolId, ArrayDecision> Decisions;
  bool AllOk = true;
  double TP = nowSeconds();
  for (const ArrayPlan &AP : Plan.Arrays) {
    if (AP.ReadOnly)
      continue;
    ArrayDecision D;
    // Exact USR evaluation is deployed only when its cost amortizes
    // across repeated executions (Sec. 5: "If we can amortize the cost of
    // the exact test ... we use direct evaluation of IND-USR, otherwise
    // we use TLS").
    auto ExactEmpty = [&](const usr::USR *S) -> bool {
      if (!S || !Plan.Hoistable)
        return false;
      double TE = nowSeconds();
      std::optional<bool> V;
      if (Hoist) {
        bool Hit = false;
        V = Hoist->emptiness(S, B, Sym, Hit);
      } else {
        V = usr::evalUSREmpty(S, B);
      }
      Stats.ExactTestSeconds += nowSeconds() - TE;
      Stats.UsedExactTest = true;
      return V.value_or(false);
    };

    // Flow independence.
    int FD = runCascade(AP.Flow, B, Pool, Stats);
    if (FD == -2 && !ExactEmpty(AP.FlowUSR)) {
      AllOk = false;
      break;
    }
    Stats.CascadeDepthUsed = std::max(Stats.CascadeDepthUsed, FD);

    // Output independence, else privatization.
    int OD = runCascade(AP.Output, B, Pool, Stats);
    if (OD == -2) {
      int PD = runCascade(AP.Priv, B, Pool, Stats);
      if (PD == -2 && !ExactEmpty(AP.OutputUSR)) {
        AllOk = false;
        break;
      }
      if (PD != -2) {
        D.Privatize = true;
        int SD = runCascade(AP.Slv, B, Pool, Stats);
        if (SD != -2)
          D.UseSLV = true;
        else
          D.UseDLV = true;
        Stats.CascadeDepthUsed =
            std::max(Stats.CascadeDepthUsed, std::max(PD, SD));
      }
    } else {
      Stats.CascadeDepthUsed = std::max(Stats.CascadeDepthUsed, OD);
    }

    // Reductions.
    if (AP.HasReduction) {
      if (AP.ExtRedUSR) { // EXT-RRED: direct writes coexist.
        int ED = runCascade(AP.ExtRedFlow, B, Pool, Stats);
        if (ED == -2 && !ExactEmpty(AP.ExtRedUSR)) {
          AllOk = false;
          break;
        }
      }
      int RD = runCascade(AP.RRed, B, Pool, Stats);
      D.ReductionPrivate = (RD == -2); // Injective => direct updates.
      if (AP.NeedsBoundsComp && AP.BoundsUSR) {
        double TB = nowSeconds();
        int64_t BL = 0, BH = -1;
        (void)computeBounds(AP.BoundsUSR, B, Pool, BL, BH);
        Stats.BoundsCompSeconds += nowSeconds() - TB;
      }
    }
    Decisions[AP.Array] = D;
  }
  Stats.PredicateSeconds =
      nowSeconds() - TP - Stats.ExactTestSeconds - Stats.BoundsCompSeconds;

  if (AllOk) {
    // Parallel execution with the selected techniques.
    int64_t Lo = sym::eval(Loop.getLo(), B);
    int64_t Hi = sym::eval(Loop.getHi(), B);
    if (Lo > Hi) {
      Stats.TotalSeconds = nowSeconds() - T0;
      return Stats;
    }
    unsigned NT = Pool.numThreads();

    // Prepare per-thread buffers.
    std::map<SymbolId, std::vector<std::vector<double>>> PrivBufs;
    std::map<SymbolId, std::vector<std::vector<double>>> RedBufs;
    std::map<SymbolId, std::vector<std::vector<uint8_t>>> Masks;
    std::map<SymbolId, std::vector<ExecState::DlvBuf>> DlvBufs;
    for (const auto &KV : Decisions) {
      std::vector<double> *Shared = M.find(KV.first);
      if (!Shared)
        continue;
      if (KV.second.Privatize) {
        PrivBufs[KV.first].assign(NT, *Shared); // Copy-in.
        if (KV.second.UseSLV)
          Masks[KV.first].assign(
              NT, std::vector<uint8_t>(Shared->size(), 0));
        if (KV.second.UseDLV) {
          DlvBufs[KV.first].resize(NT);
          for (auto &DB : DlvBufs[KV.first]) {
            DB.LastIter.assign(Shared->size(), -1);
            DB.Val.assign(Shared->size(), 0.0);
          }
        }
      }
      if (KV.second.ReductionPrivate)
        RedBufs[KV.first].assign(
            NT, std::vector<double>(Shared->size(), 0.0));
    }

    std::vector<int64_t> LastChunkEnd(NT, -1);
    Pool.parallelForBlocked(
        Lo, Hi + 1, [&](int64_t BLo, int64_t BHi, unsigned T) {
          ExecState St(M, B);
          for (auto &KV : PrivBufs)
            St.Redirect[KV.first] = &KV.second[T];
          for (auto &KV : RedBufs)
            St.RedBuf[KV.first] = &KV.second[T];
          for (auto &KV : Masks)
            St.WrittenMask[KV.first] = &KV.second[T];
          for (auto &KV : DlvBufs)
            St.Dlv[KV.first] = &KV.second[T];
          // Seed CIVs from the precomputed entry values.
          for (const summary::CivDesc &D : Plan.Civ.Civs)
            if (const sym::ArrayBinding *A = St.B.array(D.EntryArr))
              if (A->inBounds(BLo))
                St.B.setScalar(D.Civ, A->at(BLo));
          for (int64_t I = BLo; I < BHi; ++I) {
            St.CurrentIter = I;
            St.B.setScalar(Loop.getVar(), I);
            for (const Stmt *C : Loop.getBody())
              execStmt(C, St);
          }
          LastChunkEnd[T] = BHi - 1;
        });

    // Merge: reductions (sum), SLV (last thread's written elements),
    // DLV (max iteration wins).
    for (auto &KV : RedBufs) {
      std::vector<double> &Shared = *M.find(KV.first);
      for (unsigned T = 0; T < NT; ++T)
        for (size_t I = 0; I < Shared.size(); ++I)
          Shared[I] += KV.second[T][I];
    }
    unsigned LastT = 0;
    for (unsigned T = 0; T < NT; ++T)
      if (LastChunkEnd[T] == Hi)
        LastT = T;
    for (auto &KV : Masks) {
      std::vector<double> &Shared = *M.find(KV.first);
      const std::vector<uint8_t> &Mask = KV.second[LastT];
      const std::vector<double> &Priv = PrivBufs[KV.first][LastT];
      for (size_t I = 0; I < Shared.size(); ++I)
        if (Mask[I])
          Shared[I] = Priv[I];
    }
    for (auto &KV : DlvBufs) {
      std::vector<double> &Shared = *M.find(KV.first);
      for (size_t I = 0; I < Shared.size(); ++I) {
        int64_t Best = -1;
        double Val = 0;
        for (unsigned T = 0; T < NT; ++T)
          if (KV.second[T].LastIter[I] > Best) {
            Best = KV.second[T].LastIter[I];
            Val = KV.second[T].Val[I];
          }
        if (Best >= 0)
          Shared[I] = Val;
      }
    }
    Stats.RanParallel = true;
    Stats.TotalSeconds = nowSeconds() - T0;
    return Stats;
  }

  // Fallback: speculative (LRPD) execution, then sequential re-execution
  // on conflict.
  if (Plan.RuntimeTestsEnabled && runSpeculative(Plan, M, B, Pool, Stats)) {
    Stats.TotalSeconds = nowSeconds() - T0;
    return Stats;
  }
  ExecState St(M, B);
  execStmt(&Loop, St);
  B = St.B;
  Stats.TotalSeconds = nowSeconds() - T0;
  return Stats;
}

//===----------------------------------------------------------------------===//
// LRPD speculative fallback
//===----------------------------------------------------------------------===//

bool Executor::runSpeculative(const LoopPlan &Plan, Memory &M,
                              sym::Bindings &B, ThreadPool &Pool,
                              ExecStats &Stats) {
  Stats.UsedTLS = true;
  const DoLoop &Loop = *Plan.Loop;
  int64_t Lo = sym::eval(Loop.getLo(), B);
  int64_t Hi = sym::eval(Loop.getHi(), B);
  if (Lo > Hi)
    return true;

  // Backup every data array (checkpoint for misspeculation).
  auto Backup = std::as_const(M).arrays();

  // Shadow every data array.
  std::map<SymbolId, std::unique_ptr<Shadow>> Shadows;
  for (const auto &KV : std::as_const(M).arrays())
    Shadows.emplace(KV.first, std::make_unique<Shadow>(KV.second.size()));

  std::atomic<bool> Conflict{false};
  Pool.parallelForBlocked(Lo, Hi + 1,
                          [&](int64_t BLo, int64_t BHi, unsigned) {
                            ExecState St(M, B);
                            for (auto &KV : Shadows)
                              St.Shadows[KV.first] = KV.second.get();
                            St.Conflict = &Conflict;
                            for (const summary::CivDesc &D : Plan.Civ.Civs)
                              if (const sym::ArrayBinding *A =
                                      St.B.array(D.EntryArr))
                                if (A->inBounds(BLo))
                                  St.B.setScalar(D.Civ, A->at(BLo));
                            for (int64_t I = BLo;
                                 I < BHi &&
                                 !Conflict.load(std::memory_order_relaxed);
                                 ++I) {
                              St.CurrentIter = I;
                              St.B.setScalar(Loop.getVar(), I);
                              for (const Stmt *C : Loop.getBody())
                                execStmt(C, St);
                            }
                          });

  if (!Conflict.load()) {
    Stats.RanParallel = true;
    Stats.TLSSucceeded = true;
    return true;
  }
  // Misspeculation: restore and report failure (caller re-runs
  // sequentially).
  M.arrays() = std::move(Backup);
  return false;
}
