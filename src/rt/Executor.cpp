//===- rt/Executor.cpp - Runtime: the execution governor ------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "rt/Executor.h"

#include "pdag/PredEval.h"
#include "support/Error.h"
#include "support/FaultInjection.h"
#include "usr/USREval.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <utility>

using namespace halo;
using namespace halo::rt;
using namespace halo::ir;
using analysis::ArrayPlan;
using analysis::LoopPlan;
using analysis::TestCascade;
using sym::SymbolId;

namespace {

double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

} // namespace

//===----------------------------------------------------------------------===//
// Interpreter substrate delegation
//===----------------------------------------------------------------------===//

void Executor::runStmts(const std::vector<const Stmt *> &Stmts, Memory &M,
                        sym::Bindings &B) {
  interpStmts(Stmts, M, B);
}

void Executor::runSequential(const DoLoop &Loop, Memory &M,
                             sym::Bindings &B) {
  interpSequential(Loop, M, B);
}

void Executor::runCivSlice(const DoLoop &Loop, const summary::CivPlan &Plan,
                           Memory &M, sym::Bindings &B) {
  interpCivSlice(Loop, Plan, M, B);
}

bool Executor::computeBounds(const usr::USR *S, sym::Bindings &B,
                             ThreadPool &Pool, int64_t &Lo, int64_t &Hi) {
  return interpBounds(S, B, Pool, Lo, Hi);
}

//===----------------------------------------------------------------------===//
// HoistCache
//===----------------------------------------------------------------------===//

std::optional<bool> HoistCache::emptiness(const usr::USR *S,
                                          sym::Bindings &B,
                                          const sym::Context &Ctx,
                                          bool &WasHit,
                                          USRCompileCache *Compiled,
                                          ThreadPool *Pool,
                                          usr::USREvalStats *Stats,
                                          USRFramePool *Frames,
                                          const support::CancelToken *Cancel,
                                          bool BlockGates) {
  // Hash the values of the USR's free symbols (scalars + index arrays)
  // twice with independent mixings: H keys the cache, H2 verifies the hit
  // so a primary collision cannot silently return a wrong emptiness
  // answer. Both streams are framed — each symbol contributes its id and
  // each array its length before the values — so boundary-shifted inputs
  // (values migrating between adjacent arrays, or a value moving from
  // one unbound scalar's slot to another's) can never alias one stream.
  size_t H = 0;
  uint64_t H2 = 0x9e3779b97f4a7c15ULL;
  auto mix2 = [&H2](uint64_t V) {
    H2 = (H2 ^ V) * 0x100000001b3ULL; // FNV-1a-style, distinct from H.
  };
  for (sym::SymbolId Id : S->freeSymbols()) {
    const sym::Symbol &Info = Ctx.symbolInfo(Id);
    hashCombine(H, static_cast<size_t>(Id));
    mix2(static_cast<uint64_t>(Id));
    if (Info.IsArray) {
      const sym::ArrayBinding *A = B.array(Id);
      if (!A)
        return std::nullopt;
      hashCombine(H, A->Vals.size());
      hashCombine(H, static_cast<size_t>(A->Lo));
      hashRange(H, A->Vals.begin(), A->Vals.end());
      mix2(static_cast<uint64_t>(A->Vals.size()));
      mix2(static_cast<uint64_t>(A->Lo));
      for (int64_t V : A->Vals)
        mix2(static_cast<uint64_t>(V));
    } else {
      auto V = B.scalar(Id);
      if (!V)
        continue; // Bound variables of inner recurrences.
      hashCombine(H, static_cast<size_t>(*V));
      mix2(static_cast<uint64_t>(*V));
    }
  }
  Key K{S, static_cast<uint64_t>(H)};
  {
    // Probe under the lock; the (expensive) miss evaluation runs outside
    // it so concurrent executions never serialize on each other's exact
    // tests.
    support::MutexLock L(M);
    auto It = Cache.find(K);
    if (It != Cache.end() && It->second.Verify == H2) {
      WasHit = true;
      return It->second.Empty;
    }
    if (It != Cache.end())
      ++Collisions; // Same primary hash, different inputs: re-evaluate.
  }
  WasHit = false;
  // An aborted miss evaluation yields nullopt — no answer — so the `if
  // (V)` below can never cache a half-evaluated emptiness result on
  // behalf of a cancelled request.
  if (support::stopRequested(Cancel))
    return std::nullopt;
  auto V = Compiled ? Compiled->emptiness(S, B, Pool, Stats, Frames, Cancel,
                                          BlockGates)
                    : usr::evalUSREmpty(S, B, 1u << 22, Stats);
  if (support::stopRequested(Cancel))
    return std::nullopt;
  if (V) {
    support::MutexLock L(M);
    Cache[K] = Entry{H2, *V}; // Most recent inputs win the slot.
  }
  return V;
}

//===----------------------------------------------------------------------===//
// Planned execution (the governor)
//===----------------------------------------------------------------------===//

namespace {

/// Runtime decision for one array.
struct ArrayDecision {
  bool Privatize = false;
  bool UseSLV = false;
  bool UseDLV = false;
  bool ReductionPrivate = false;
};

} // namespace

int Executor::runCascade(const TestCascade &C, const CompiledCascade *Pre,
                         sym::Bindings &B, ThreadPool &Pool,
                         ExecStats &Stats, FramePool *Frames,
                         const support::CancelToken *Cancel) {
  if (C.StaticallyTrue)
    return -1;

  if (!UseCompiledPreds) {
    // Reference path: the tree-walking interpreter in cascade order. Each
    // stage evaluation is counted here by the governor (symmetric with
    // the compiled branch below).
    for (const pdag::CascadeStage &St : C.Stages) {
      if (support::stopRequested(Cancel))
        return -3; // Aborted: no stage answer (distinct from -2).
      pdag::EvalStats ES;
      auto V = pdag::tryEvalPred(St.P, B, &ES);
      Stats.PredicateLeafEvals += ES.LeafEvals;
      ++Stats.InterpPredEvals;
      if (V && *V)
        return St.Depth;
    }
    return -2;
  }

  // Compiled path. With a plan-time cascade (session executions) the
  // stage vector is already built and cost-ordered; the standalone path
  // lowers through the executor's own cache and sorts per call.
  CompiledCascade Local;
  if (!Pre) {
    Local = CompiledCascade::build(C, OwnCompile);
    Pre = &Local;
  }
  for (const CompiledCascade::Stage &St : Pre->Stages) {
    // Stage-boundary cancellation poll: the serving path runs inline
    // (1-thread sessions), so this — not the parallel chunk boundary —
    // is where a deadline fires between pieces of predicate work.
    if (support::stopRequested(Cancel))
      return -3;
    pdag::EvalStats ES;
    if (!St.Code) {
      // Lowering tripped a resource guard for this stage's predicate
      // (CompiledPred::compile returned null): demote the stage to the
      // tree-walking interpreter. Same answer, only slower, and counted.
      auto V = pdag::tryEvalPred(St.Source->P, B, &ES);
      Stats.PredicateLeafEvals += ES.LeafEvals;
      ++Stats.InterpPredEvals;
      ++Stats.GuardDemotions;
      if (V && *V)
        return St.Source->Depth;
      continue;
    }
    // O(1) stages run inline; O(N)+ stages fan their root LoopAll range
    // out across the pool with the exact early-exit and-reduction.
    // Pooled frames (when the session provides a pool) skip per-execution
    // frame allocation and, with unchanged bindings, symbol re-binding.
    std::optional<bool> V;
    const pdag::BlockEval BE =
        UseBlockEval ? pdag::BlockEval::Auto : pdag::BlockEval::Off;
    if (Frames) {
      auto &PF = Frames->frameFor(St.Code);
      V = St.Code->loopDepth() >= 1
              ? St.Code->evalParallelPooled(PF, B, Pool, &ES, 4096, Cancel,
                                            BE)
              : St.Code->evalPooled(PF, B, &ES, BE);
    } else {
      V = St.Code->loopDepth() >= 1
              ? St.Code->evalParallel(B, Pool, &ES, 4096, Cancel, BE)
              : St.Code->eval(B, &ES, BE);
    }
    Stats.PredicateLeafEvals += ES.LeafEvals;
    Stats.PredMemoHits += ES.MemoHits;
    Stats.FrameBinds += ES.FrameBinds;
    Stats.FrameRebindsSkipped += ES.FrameRebindsSkipped;
    Stats.BlockEvals += ES.BlockEvals;
    Stats.ScalarEvals += ES.ScalarEvals;
    Stats.LanesPoisoned += ES.LanesPoisoned;
    ++Stats.CompiledPredEvals;
    if (V && *V)
      return St.Source->Depth;
  }
  return -2;
}

ExecStats Executor::runPlanned(const LoopPlan &Plan, Memory &M,
                               sym::Bindings &B, ThreadPool &Pool,
                               HoistCache *Hoist, const PlanCascades *Pre,
                               ExecContext *Ctx,
                               USRCompileCache *UsrCompile) {
  assert((!Pre || Pre->Arrays.size() == Plan.Arrays.size()) &&
         "plan cascades must be built from this plan");
  support::faultAt("rt.exec");
  FramePool *Frames = Ctx ? &Ctx->Frames : nullptr;
  USRFramePool *UsrFrames = Ctx ? &Ctx->UsrFrames : nullptr;
  const support::CancelToken *Cancel = Ctx ? Ctx->Cancel : nullptr;
  ExecStats Stats;
  double T0 = nowSeconds();
  const DoLoop &Loop = *Plan.Loop;

  // Classifies a fired token into the stats and finalizes timing. Every
  // abort below fires *between* units of work: either nothing ran yet, or
  // only complete phases (CIV slice, decided predicates) ran — the
  // caller's Memory is never left mid-loop-body.
  auto finishAborted = [&]() -> ExecStats {
    Stats.Aborted =
        Cancel->state() == support::CancelToken::State::Expired
            ? ExecStats::AbortReason::Expired
            : ExecStats::AbortReason::Cancelled;
    Stats.TotalSeconds = nowSeconds() - T0;
    return Stats;
  };
  if (support::stopRequested(Cancel))
    return finishAborted();

  // Loops proven dependent (or abandoned by the static-only baseline)
  // execute sequentially without any dynamic machinery.
  if (Plan.Class == analysis::LoopClass::StaticSeq ||
      (!Plan.RuntimeTestsEnabled &&
       Plan.Class != analysis::LoopClass::StaticPar)) {
    interpSequential(Loop, M, B);
    Stats.TotalSeconds = nowSeconds() - T0;
    return Stats;
  }

  // CIV-COMP.
  if (!Plan.Civ.empty()) {
    double TS = nowSeconds();
    interpCivSlice(Loop, Plan.Civ, M, B);
    Stats.CivSliceSeconds = nowSeconds() - TS;
  }

  // Per-array decisions.
  std::map<SymbolId, ArrayDecision> Decisions;
  bool AllOk = true;
  bool AbortRun = false;
  double TP = nowSeconds();
  for (size_t PI = 0; PI < Plan.Arrays.size() && !AbortRun; ++PI) {
    const ArrayPlan &AP = Plan.Arrays[PI];
    if (AP.ReadOnly)
      continue;
    if (support::stopRequested(Cancel)) {
      AbortRun = true;
      break;
    }
    const PlanCascades::ArrayCascades *AC = Pre ? &Pre->Arrays[PI] : nullptr;
    auto Casc = [&](const TestCascade &C,
                    const CompiledCascade *CC) -> int {
      int D = runCascade(C, CC, B, Pool, Stats, Frames, Cancel);
      if (D == -3)
        AbortRun = true;
      return D;
    };
    ArrayDecision D;
    // Exact USR evaluation is deployed only when its cost amortizes
    // across repeated executions (Sec. 5: "If we can amortize the cost of
    // the exact test ... we use direct evaluation of IND-USR, otherwise
    // we use TLS"). Evaluations (HoistCache misses included) route
    // through the compiled interval-run engine unless the interpreter
    // path was selected for A/B measurement; each evaluation is counted
    // once, here, on whichever path it took.
    USRCompileCache *UC =
        UseCompiledUSRs ? (UsrCompile ? UsrCompile : &OwnUsrCompile)
                        : nullptr;
    auto ExactEmpty = [&](const usr::USR *S) -> bool {
      if (!S || !Plan.Hoistable)
        return false;
      double TE = nowSeconds();
      std::optional<bool> V;
      usr::USREvalStats US;
      bool Hit = false;
      if (Hoist)
        V = Hoist->emptiness(S, B, Sym, Hit, UC, &Pool, &US, UsrFrames,
                             Cancel, UseBlockEval);
      else if (UC)
        V = UC->emptiness(S, B, &Pool, &US, UsrFrames, Cancel, UseBlockEval);
      else
        V = usr::evalUSREmpty(S, B, 1u << 22, &US);
      // A demoted evaluation ran on the interpreter even though the
      // compiled cache was consulted — count it in the interpreted column
      // so the compiled/interpreted split stays truthful.
      bool Demoted = US.GuardDemotions > 0;
      if (!Hit)
        ++(UC && !Demoted ? Stats.CompiledUSREvals : Stats.InterpUSREvals);
      Stats.GuardDemotions += US.GuardDemotions;
      Stats.USRRunsProduced += US.RunsProduced;
      Stats.USRPointsAvoided += US.PointsAvoided;
      Stats.BlockEvals += US.GateBlockEvals;
      Stats.ScalarEvals += US.GateScalarEvals;
      Stats.LanesPoisoned += US.GateLanesPoisoned;
      Stats.ExactTestSeconds += nowSeconds() - TE;
      Stats.UsedExactTest = true;
      // An exact-test boundary is also a cancellation boundary: a fired
      // token means V is nullopt (no answer), which must abort the run
      // rather than read as "not independent" and route to fallbacks.
      if (support::stopRequested(Cancel))
        AbortRun = true;
      return V.value_or(false);
    };

    // Flow independence.
    int FD = Casc(AP.Flow, AC ? &AC->Flow : nullptr);
    if (AbortRun)
      break;
    if (FD == -2 && !ExactEmpty(AP.FlowUSR)) {
      AllOk = false;
      break;
    }
    Stats.CascadeDepthUsed = std::max(Stats.CascadeDepthUsed, FD);

    // Output independence, else privatization.
    int OD = Casc(AP.Output, AC ? &AC->Output : nullptr);
    if (OD == -2) {
      int PD = Casc(AP.Priv, AC ? &AC->Priv : nullptr);
      if (PD == -2 && !ExactEmpty(AP.OutputUSR)) {
        AllOk = false;
        break;
      }
      if (PD != -2) {
        D.Privatize = true;
        int SD = Casc(AP.Slv, AC ? &AC->Slv : nullptr);
        if (SD != -2)
          D.UseSLV = true;
        else
          D.UseDLV = true;
        Stats.CascadeDepthUsed =
            std::max(Stats.CascadeDepthUsed, std::max(PD, SD));
      }
    } else {
      Stats.CascadeDepthUsed = std::max(Stats.CascadeDepthUsed, OD);
    }
    if (AbortRun)
      break;

    // Reductions.
    if (AP.HasReduction) {
      if (AP.ExtRedUSR) { // EXT-RRED: direct writes coexist.
        int ED = Casc(AP.ExtRedFlow, AC ? &AC->ExtRedFlow : nullptr);
        if (ED == -2 && !ExactEmpty(AP.ExtRedUSR)) {
          AllOk = false;
          break;
        }
      }
      int RD = Casc(AP.RRed, AC ? &AC->RRed : nullptr);
      if (AbortRun)
        break;
      D.ReductionPrivate = (RD == -2); // Injective => direct updates.
      if (AP.NeedsBoundsComp && AP.BoundsUSR) {
        double TB = nowSeconds();
        int64_t BL = 0, BH = -1;
        (void)interpBounds(AP.BoundsUSR, B, Pool, BL, BH);
        Stats.BoundsCompSeconds += nowSeconds() - TB;
      }
    }
    Decisions[AP.Array] = D;
  }
  Stats.PredicateSeconds =
      nowSeconds() - TP - Stats.ExactTestSeconds - Stats.BoundsCompSeconds;

  // Last poll before committing to body execution (parallel, speculative
  // or sequential): once a body starts, it runs to completion so the
  // caller's Memory is never partially updated.
  if (AbortRun || support::stopRequested(Cancel))
    return finishAborted();

  if (AllOk) {
    // Parallel execution with the selected techniques.
    int64_t Lo = sym::eval(Loop.getLo(), B);
    int64_t Hi = sym::eval(Loop.getHi(), B);
    if (Lo > Hi) {
      Stats.TotalSeconds = nowSeconds() - T0;
      return Stats;
    }
    unsigned NT = Pool.numThreads();

    // Prepare per-thread buffers.
    std::map<SymbolId, std::vector<std::vector<double>>> PrivBufs;
    std::map<SymbolId, std::vector<std::vector<double>>> RedBufs;
    std::map<SymbolId, std::vector<std::vector<uint8_t>>> Masks;
    std::map<SymbolId, std::vector<ExecState::DlvBuf>> DlvBufs;
    for (const auto &KV : Decisions) {
      std::vector<double> *Shared = M.find(KV.first);
      if (!Shared)
        continue;
      if (KV.second.Privatize) {
        PrivBufs[KV.first].assign(NT, *Shared); // Copy-in.
        if (KV.second.UseSLV)
          Masks[KV.first].assign(
              NT, std::vector<uint8_t>(Shared->size(), 0));
        if (KV.second.UseDLV) {
          DlvBufs[KV.first].resize(NT);
          for (auto &DB : DlvBufs[KV.first]) {
            DB.LastIter.assign(Shared->size(), -1);
            DB.Val.assign(Shared->size(), 0.0);
          }
        }
      }
      if (KV.second.ReductionPrivate)
        RedBufs[KV.first].assign(
            NT, std::vector<double>(Shared->size(), 0.0));
    }

    std::vector<int64_t> LastChunkEnd(NT, -1);
    Pool.parallelForBlocked(
        Lo, Hi + 1, [&](int64_t BLo, int64_t BHi, unsigned T) {
          ExecState St(M, B);
          for (auto &KV : PrivBufs)
            St.Redirect[KV.first] = &KV.second[T];
          for (auto &KV : RedBufs)
            St.RedBuf[KV.first] = &KV.second[T];
          for (auto &KV : Masks)
            St.WrittenMask[KV.first] = &KV.second[T];
          for (auto &KV : DlvBufs)
            St.Dlv[KV.first] = &KV.second[T];
          // Seed CIVs from the precomputed entry values.
          for (const summary::CivDesc &D : Plan.Civ.Civs)
            if (const sym::ArrayBinding *A = St.B.array(D.EntryArr))
              if (A->inBounds(BLo))
                St.B.setScalar(D.Civ, A->at(BLo));
          for (int64_t I = BLo; I < BHi; ++I) {
            St.CurrentIter = I;
            St.B.setScalar(Loop.getVar(), I);
            for (const Stmt *C : Loop.getBody())
              interpStmt(C, St);
          }
          LastChunkEnd[T] = BHi - 1;
        });

    // Merge: reductions (sum), SLV (last thread's written elements),
    // DLV (max iteration wins).
    for (auto &KV : RedBufs) {
      std::vector<double> &Shared = *M.find(KV.first);
      for (unsigned T = 0; T < NT; ++T)
        for (size_t I = 0; I < Shared.size(); ++I)
          Shared[I] += KV.second[T][I];
    }
    unsigned LastT = 0;
    for (unsigned T = 0; T < NT; ++T)
      if (LastChunkEnd[T] == Hi)
        LastT = T;
    for (auto &KV : Masks) {
      std::vector<double> &Shared = *M.find(KV.first);
      const std::vector<uint8_t> &Mask = KV.second[LastT];
      const std::vector<double> &Priv = PrivBufs[KV.first][LastT];
      for (size_t I = 0; I < Shared.size(); ++I)
        if (Mask[I])
          Shared[I] = Priv[I];
    }
    for (auto &KV : DlvBufs) {
      std::vector<double> &Shared = *M.find(KV.first);
      for (size_t I = 0; I < Shared.size(); ++I) {
        int64_t Best = -1;
        double Val = 0;
        for (unsigned T = 0; T < NT; ++T)
          if (KV.second[T].LastIter[I] > Best) {
            Best = KV.second[T].LastIter[I];
            Val = KV.second[T].Val[I];
          }
        if (Best >= 0)
          Shared[I] = Val;
      }
    }
    Stats.RanParallel = true;
    Stats.TotalSeconds = nowSeconds() - T0;
    return Stats;
  }

  // Fallback: speculative (LRPD) execution, then sequential re-execution
  // on conflict.
  if (Plan.RuntimeTestsEnabled && runSpeculative(Plan, M, B, Pool, Stats)) {
    Stats.TotalSeconds = nowSeconds() - T0;
    return Stats;
  }
  interpSequential(Loop, M, B);
  Stats.TotalSeconds = nowSeconds() - T0;
  return Stats;
}

//===----------------------------------------------------------------------===//
// LRPD speculative fallback
//===----------------------------------------------------------------------===//

bool Executor::runSpeculative(const LoopPlan &Plan, Memory &M,
                              sym::Bindings &B, ThreadPool &Pool,
                              ExecStats &Stats) {
  Stats.UsedTLS = true;
  const DoLoop &Loop = *Plan.Loop;
  int64_t Lo = sym::eval(Loop.getLo(), B);
  int64_t Hi = sym::eval(Loop.getHi(), B);
  if (Lo > Hi)
    return true;

  // Backup every data array (checkpoint for misspeculation).
  auto Backup = std::as_const(M).arrays();

  // Shadow every data array.
  std::map<SymbolId, std::unique_ptr<Shadow>> Shadows;
  for (const auto &KV : std::as_const(M).arrays())
    Shadows.emplace(KV.first, std::make_unique<Shadow>(KV.second.size()));

  std::atomic<bool> Conflict{false};
  Pool.parallelForBlocked(Lo, Hi + 1,
                          [&](int64_t BLo, int64_t BHi, unsigned) {
                            ExecState St(M, B);
                            for (auto &KV : Shadows)
                              St.Shadows[KV.first] = KV.second.get();
                            St.Conflict = &Conflict;
                            for (const summary::CivDesc &D : Plan.Civ.Civs)
                              if (const sym::ArrayBinding *A =
                                      St.B.array(D.EntryArr))
                                if (A->inBounds(BLo))
                                  St.B.setScalar(D.Civ, A->at(BLo));
                            for (int64_t I = BLo;
                                 I < BHi &&
                                 !Conflict.load(std::memory_order_relaxed);
                                 ++I) {
                              St.CurrentIter = I;
                              St.B.setScalar(Loop.getVar(), I);
                              for (const Stmt *C : Loop.getBody())
                                interpStmt(C, St);
                            }
                          });

  if (!Conflict.load()) {
    Stats.RanParallel = true;
    Stats.TLSSucceeded = true;
    return true;
  }
  // Misspeculation: restore and report failure (caller re-runs
  // sequentially).
  M.arrays() = std::move(Backup);
  return false;
}
