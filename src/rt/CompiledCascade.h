//===- rt/CompiledCascade.h - Plan-time cascade compilation ----*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-once half of the governor's cascade machinery, hoisted out
/// of rt::Executor so it can be shared and amortized by the session layer:
///
///  - PredCompileCache: interned-predicate -> bytecode, compiled once,
///  - CompiledCascade:  one TestCascade's stage vector, built and
///    cost-ordered once at *plan* time (not per execution),
///  - PlanCascades:     every cascade of a LoopPlan, index-aligned with
///    Plan.Arrays,
///  - FramePool:        per-predicate pooled evaluation frames so repeated
///    executions skip frame allocation and symbol re-binding.
///
/// Thread-safety contract: none of these caches lock. PredCompileCache /
/// USRCompileCache / FramePool are *shard-local* by design — the serving
/// layer (src/serve) gives every shard its own session (and therefore its
/// own instances of all three) and serializes execution within a shard, so
/// the caches are only ever touched by one thread at a time. In
/// particular USRCompileCache keeps exactly one pooled frame per USR
/// (whose gate memos and prefix caches are mutable across evaluations):
/// sharing one instance between concurrently-executing threads would race
/// on those frames. Compiled bytecode itself (CompiledPred / CompiledUSR)
/// is immutable after compilation and may be read from any thread.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_RT_COMPILEDCASCADE_H
#define HALO_RT_COMPILEDCASCADE_H

#include "analysis/Analyzer.h"
#include "pdag/PredCompile.h"
#include "usr/USRCompile.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace halo {
namespace rt {

/// Compile-once cache over interned cascade predicates. Stage predicates
/// recur across loops (shared sub-equations, repeated analysis), so the
/// cache is keyed by predicate identity and shared session-wide.
class PredCompileCache {
public:
  explicit PredCompileCache(const sym::Context &Sym) : Sym(Sym) {}

  const pdag::CompiledPred *get(const pdag::Pred *P);
  size_t size() const { return Cache.size(); }

private:
  const sym::Context &Sym;
  std::unordered_map<const pdag::Pred *, std::unique_ptr<pdag::CompiledPred>>
      Cache;
};

/// One TestCascade lowered to bytecode with the stage vector cost-ordered
/// (cheapest compiled stage first) once, at plan time. The governor then
/// just walks Stages on every execution. Stage sources point into the
/// TestCascade the cascade was built from, which must outlive it (the
/// session stores both inside one PreparedLoop).
struct CompiledCascade {
  struct Stage {
    const pdag::CascadeStage *Source = nullptr;
    const pdag::CompiledPred *Code = nullptr;
  };
  std::vector<Stage> Stages;
  bool StaticallyTrue = false;

  static CompiledCascade build(const analysis::TestCascade &C,
                               PredCompileCache &Cache);
};

/// Every runtime cascade of one LoopPlan, compiled and ordered at plan
/// time; index-aligned with Plan.Arrays (read-only arrays get empty
/// entries).
struct PlanCascades {
  struct ArrayCascades {
    CompiledCascade Flow, Output, Priv, Slv, RRed, ExtRedFlow;
  };
  std::vector<ArrayCascades> Arrays;

  static PlanCascades build(const analysis::LoopPlan &Plan,
                            PredCompileCache &Cache);
};

/// Compile-once cache over independence USRs (the exact-test / HOIST-USR
/// fallback surface), the dual of PredCompileCache for the other half of
/// the runtime machinery: USR identity -> interval-run bytecode plus a
/// pooled evaluation frame whose invariant-gate memo and recurrence
/// prefix caches stay warm across executions with unchanged bindings.
/// Gate predicates resolve through the shared PredCompileCache, so a
/// predicate appearing both as a cascade stage and inside a USR gate is
/// lowered exactly once session-wide.
class USRCompileCache {
public:
  USRCompileCache(const sym::Context &Sym, PredCompileCache &Preds)
      : Sym(Sym), Preds(Preds) {}

  /// Compiles \p S on first use (plan-time warmup calls this eagerly).
  const usr::CompiledUSR *get(const usr::USR *S);

  /// Compiles (once) and evaluates emptiness through the pooled frame;
  /// a root recurrence is chunked across \p Pool when one is given.
  std::optional<bool> emptiness(const usr::USR *S, const sym::Bindings &B,
                                ThreadPool *Pool = nullptr,
                                usr::USREvalStats *Stats = nullptr);

  size_t size() const { return Cache.size(); }

private:
  struct Entry {
    std::unique_ptr<usr::CompiledUSR> Code;
    usr::CompiledUSR::PooledFrame Frame;
  };
  Entry &entryFor(const usr::USR *S);

  const sym::Context &Sym;
  PredCompileCache &Preds;
  std::unordered_map<const usr::USR *, Entry> Cache;
};

/// Pooled per-predicate evaluation frames. One frame per compiled
/// predicate suffices for a single-governor session: serial evaluations
/// run on the calling thread, and parallel evaluations keep their
/// per-worker scratch copies inside the frame.
class FramePool {
public:
  pdag::CompiledPred::PooledFrame &frameFor(const pdag::CompiledPred *CP) {
    return Frames[CP];
  }
  size_t size() const { return Frames.size(); }

private:
  std::unordered_map<const pdag::CompiledPred *,
                     pdag::CompiledPred::PooledFrame>
      Frames;
};

} // namespace rt
} // namespace halo

#endif // HALO_RT_COMPILEDCASCADE_H
