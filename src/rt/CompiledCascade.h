//===- rt/CompiledCascade.h - Plan-time cascade compilation ----*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-once half of the governor's cascade machinery, hoisted out
/// of rt::Executor so it can be shared and amortized by the session layer:
///
///  - PredCompileCache: interned-predicate -> bytecode, compiled once,
///  - CompiledCascade:  one TestCascade's stage vector, built and
///    cost-ordered once at *plan* time (not per execution),
///  - PlanCascades:     every cascade of a LoopPlan, index-aligned with
///    Plan.Arrays,
///  - FramePool / USRFramePool / ExecContext: the *mutable* per-execution
///    state (pooled evaluation frames with their bind-skip stamps, memo
///    tables and recurrence prefix caches), bundled so an execution can
///    check one context out, run, and return it.
///
/// Thread-safety contract (the serving layer's concurrent intra-shard
/// execution builds on this):
///
///  - Compiled bytecode (pdag::CompiledPred, usr::CompiledUSR) is
///    immutable after compilation and may be evaluated from any number of
///    threads at once.
///  - PredCompileCache and USRCompileCache are internally synchronized
///    *code* caches: get()/emptiness() may be called concurrently. In
///    practice they are write-hot only during plan time (which the
///    serving layer runs config-exclusive) and read-only afterwards, so
///    the internal mutex is uncontended on the serving path.
///  - Frames are NOT shared: a FramePool / USRFramePool (and the
///    ExecContext bundling them) belongs to exactly one execution at a
///    time. Pooled frames carry mutable bind-skip stamps, invariant-memo
///    tables and recurrence prefix caches, so two concurrent executions
///    must check out two distinct contexts (session::Session pools and
///    leases them). USRCompileCache's internal per-entry fallback frame is
///    only used when the caller does not supply a USRFramePool (standalone
///    executors); frameless callers serialize on the entry's fallback
///    mutex, so misuse degrades to sequential evaluation, never a race.
///
/// These contracts are machine-checked: the locks are support/Sync.h
/// capabilities, the fields carry HALO_GUARDED_BY, and CI's thread-safety
/// job compiles the tree with -Werror=thread-safety (docs/CONCURRENCY.md
/// has the full capability map).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_RT_COMPILEDCASCADE_H
#define HALO_RT_COMPILEDCASCADE_H

#include "analysis/Analyzer.h"
#include "pdag/PredCompile.h"
#include "support/CancelToken.h"
#include "support/Sync.h"
#include "usr/USRCompile.h"

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

namespace halo {
namespace rt {

/// Compile-once cache over interned cascade predicates. Stage predicates
/// recur across loops (shared sub-equations, repeated analysis), so the
/// cache is keyed by predicate identity and shared session-wide.
/// Internally synchronized: concurrent get() calls are safe (compilation
/// happens under the lock; entries are immutable once published).
class PredCompileCache {
public:
  explicit PredCompileCache(const sym::Context &Sym) : Sym(Sym) {}

  const pdag::CompiledPred *get(const pdag::Pred *P) HALO_EXCLUDES(M);
  size_t size() const HALO_EXCLUDES(M) {
    support::MutexLock L(M);
    return Cache.size();
  }

private:
  const sym::Context &Sym;
  mutable support::Mutex M;
  /// Entries are immutable once published; the map itself is the guarded
  /// state (probe/insert under M — the compiled bytecode is then
  /// evaluated by any thread without it).
  std::unordered_map<const pdag::Pred *, std::unique_ptr<pdag::CompiledPred>>
      Cache HALO_GUARDED_BY(M);
};

/// One TestCascade lowered to bytecode with the stage vector cost-ordered
/// (cheapest compiled stage first) once, at plan time. The governor then
/// just walks Stages on every execution. Stage sources point into the
/// TestCascade the cascade was built from, which must outlive it (the
/// session stores both inside one PreparedLoop).
struct CompiledCascade {
  struct Stage {
    const pdag::CascadeStage *Source = nullptr;
    const pdag::CompiledPred *Code = nullptr;
  };
  std::vector<Stage> Stages;
  bool StaticallyTrue = false;

  static CompiledCascade build(const analysis::TestCascade &C,
                               PredCompileCache &Cache);
};

/// Every runtime cascade of one LoopPlan, compiled and ordered at plan
/// time; index-aligned with Plan.Arrays (read-only arrays get empty
/// entries).
struct PlanCascades {
  struct ArrayCascades {
    CompiledCascade Flow, Output, Priv, Slv, RRed, ExtRedFlow;
  };
  std::vector<ArrayCascades> Arrays;

  static PlanCascades build(const analysis::LoopPlan &Plan,
                            PredCompileCache &Cache);
};

/// Pooled per-compiled-unit evaluation frames: one mutable FrameT (bind
/// stamps, memo tables, prefix caches, per-worker scratch copies) per
/// immutable CodeT. One frame per unit suffices for a single execution
/// stream; a pool must only be used by one execution at a time (see
/// ExecContext). size()/stackSlotsSaved() alone are safe to read
/// concurrently (stats snapshots) via the mirrored atomics.
template <class CodeT, class FrameT> class FramePoolOf {
public:
  FrameT &frameFor(const CodeT *Code) {
    auto R = Frames.try_emplace(Code);
    if (R.second) {
      Count.store(Frames.size(), std::memory_order_relaxed);
      Saved.fetch_add(Code->frameStackSlotsSaved(),
                      std::memory_order_relaxed);
    }
    return R.first->second;
  }
  size_t size() const { return Count.load(std::memory_order_relaxed); }
  /// Stack slots the compiled units' exact-depth precompute saved across
  /// every frame pooled here, relative to the old code-length-based
  /// sizing (CodeT::frameStackSlotsSaved summed over distinct units).
  size_t stackSlotsSaved() const {
    return Saved.load(std::memory_order_relaxed);
  }

private:
  std::unordered_map<const CodeT *, FrameT> Frames;
  /// Mirrors Frames.size() so concurrent stats snapshots need no lock.
  std::atomic<size_t> Count{0};
  std::atomic<size_t> Saved{0};
};

/// Pooled per-predicate evaluation frames (cascade stages).
using FramePool =
    FramePoolOf<pdag::CompiledPred, pdag::CompiledPred::PooledFrame>;
/// Pooled per-USR evaluation frames (exact tests), the compiled-USR dual.
using USRFramePool =
    FramePoolOf<usr::CompiledUSR, usr::CompiledUSR::PooledFrame>;

/// The checkout/return unit of mutable execution state: everything one
/// runPlanned() call mutates outside the caller's Memory/Bindings. A
/// context may be reused across executions (that reuse is what keeps the
/// pooled frames' bind-skip and memo state warm) but never shared between
/// two concurrent executions. session::Session owns a pool of these and
/// leases one per runPrepared() call.
struct ExecContext {
  FramePool Frames;
  USRFramePool UsrFrames;
  /// Per-execution cancellation token (deadline and/or caller cancel),
  /// set by the lease holder for the duration of one execution and
  /// cleared on return to the pool. The governor polls it at stage,
  /// exact-test and repeat boundaries; a pooled context itself carries no
  /// cross-execution cancel state.
  const support::CancelToken *Cancel = nullptr;
};

/// Compile-once cache over independence USRs (the exact-test / HOIST-USR
/// fallback surface), the dual of PredCompileCache for the other half of
/// the runtime machinery: USR identity -> interval-run bytecode. Gate
/// predicates resolve through the shared PredCompileCache, so a predicate
/// appearing both as a cascade stage and inside a USR gate is lowered
/// exactly once session-wide. Internally synchronized like
/// PredCompileCache; mutable evaluation frames come from the caller's
/// USRFramePool (concurrent executions) or, absent one, from a per-entry
/// fallback frame that is only sound single-threaded.
class USRCompileCache {
public:
  USRCompileCache(const sym::Context &Sym, PredCompileCache &Preds)
      : Sym(Sym), Preds(Preds) {}

  /// Compiles \p S on first use (plan-time warmup calls this eagerly).
  /// Safe to call concurrently.
  const usr::CompiledUSR *get(const usr::USR *S) HALO_EXCLUDES(M);

  /// Compiles (once) and evaluates emptiness; a root recurrence is
  /// chunked across \p Pool when one is given. The pooled evaluation
  /// frame comes from \p Frames when provided — required for concurrent
  /// callers to stay parallel — and from the cache entry's fallback
  /// frame otherwise. Frameless calls serialize on the entry's fallback
  /// mutex for the whole evaluation (shared mutable frame state), so
  /// concurrent frameless callers are correct, merely sequential. A
  /// fired \p Cancel token aborts the evaluation and yields nullopt (no
  /// answer — never a cacheable one). \p BlockGates selects the batched
  /// gate tier (usr::CompiledUSR::evalEmpty). The cache mutex M covers
  /// only the probe/insert; evaluation runs outside it.
  std::optional<bool> emptiness(const usr::USR *S, const sym::Bindings &B,
                                ThreadPool *Pool = nullptr,
                                usr::USREvalStats *Stats = nullptr,
                                USRFramePool *Frames = nullptr,
                                const support::CancelToken *Cancel = nullptr,
                                bool BlockGates = true) HALO_EXCLUDES(M);

  size_t size() const HALO_EXCLUDES(M) {
    support::MutexLock L(M);
    return Cache.size();
  }

private:
  struct Entry {
    /// Set once at insertion (under the cache mutex) and immutable
    /// afterwards; evaluated lock-free from any thread.
    std::unique_ptr<usr::CompiledUSR> Code;
    /// Serializes frameless callers over the shared fallback frame.
    support::Mutex FallbackM;
    /// Fallback frame for frameless callers (standalone executors):
    /// mutable bind stamps and prefix caches, shared cache state — held
    /// under FallbackM for the whole evaluation.
    usr::CompiledUSR::PooledFrame Frame HALO_GUARDED_BY(FallbackM);
  };
  /// The returned reference is stable (node-based map).
  Entry &entryForLocked(const usr::USR *S) HALO_REQUIRES(M);

  const sym::Context &Sym;
  PredCompileCache &Preds;
  mutable support::Mutex M;
  std::unordered_map<const usr::USR *, Entry> Cache HALO_GUARDED_BY(M);
};

} // namespace rt
} // namespace halo

#endif // HALO_RT_COMPILEDCASCADE_H
