//===- rt/Memory.h - Runtime data-array storage ----------------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data-array storage for the interpreter substrate. Split out of
/// Executor.h so the interpreter (rt/Interp.h) and the governor
/// (rt/Executor.h) layers can depend on it independently.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_RT_MEMORY_H
#define HALO_RT_MEMORY_H

#include "sym/Eval.h"

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace halo {
namespace rt {

/// Data-array storage (doubles); integer index arrays live in
/// sym::Bindings.
///
/// find() sits on the interpreted-loop hot path (every load/store resolves
/// its base array through it, from every worker thread), so lookups go
/// through a hash map with a per-thread last-lookup cache: loop bodies hit
/// the same handful of arrays on every statement. The cache is validated
/// against a version stamp drawn from a process-global counter on every
/// mutation, so a stamp is never reused — not even by a different Memory
/// instance reincarnated at the same address (stack-allocated Memories in
/// back-to-back tests would otherwise alias a stale cache entry).
class Memory {
public:
  Memory() = default;
  Memory(const Memory &) = delete;
  Memory &operator=(const Memory &) = delete;

  std::vector<double> &alloc(sym::SymbolId Id, size_t Elems) {
    bumpVersion();
    auto &V = Arrays[Id];
    V.assign(Elems, 0.0);
    return V;
  }
  std::vector<double> *find(sym::SymbolId Id) {
    struct LastLookup {
      const Memory *M = nullptr;
      uint64_t Version = 0;
      sym::SymbolId Id = 0;
      std::vector<double> *V = nullptr;
    };
    thread_local LastLookup Last;
    const uint64_t Ver = Version.load(std::memory_order_relaxed);
    if (Last.M == this && Last.Version == Ver && Last.Id == Id)
      return Last.V;
    auto It = Arrays.find(Id);
    std::vector<double> *V = It == Arrays.end() ? nullptr : &It->second;
    Last = LastLookup{this, Ver, Id, V};
    return V;
  }
  const std::unordered_map<sym::SymbolId, std::vector<double>> &
  arrays() const {
    return Arrays;
  }
  /// Mutable access invalidates the per-thread lookup caches (callers
  /// replace whole arrays, e.g. the misspeculation rollback).
  std::unordered_map<sym::SymbolId, std::vector<double>> &arrays() {
    bumpVersion();
    return Arrays;
  }

private:
  void bumpVersion() {
    static std::atomic<uint64_t> GlobalVersion{1};
    Version.store(GlobalVersion.fetch_add(1, std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
  }

  std::unordered_map<sym::SymbolId, std::vector<double>> Arrays;
  std::atomic<uint64_t> Version{0};
};

} // namespace rt
} // namespace halo

#endif // HALO_RT_MEMORY_H
