//===- rt/Interp.cpp - The interpreter substrate --------------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "rt/Interp.h"

#include "pdag/PredEval.h"
#include "support/Casting.h"
#include "support/Error.h"
#include "usr/USR.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace halo;
using namespace halo::rt;
using namespace halo::ir;
using sym::SymbolId;

namespace {

/// Deterministic synthetic per-statement work (models loop granularity).
double spinWork(unsigned N, double Seed) {
  double X = Seed;
  for (unsigned K = 0; K < N; ++K)
    X = X * 1.0000001 + 1e-9;
  return X;
}

} // namespace

//===----------------------------------------------------------------------===//
// ExecState
//===----------------------------------------------------------------------===//

std::pair<SymbolId, int64_t> ExecState::resolve(SymbolId Arr,
                                                int64_t Off) const {
  auto It = Alias.find(Arr);
  while (It != Alias.end()) {
    Off += It->second.second;
    Arr = It->second.first;
    It = Alias.find(Arr);
  }
  return {Arr, Off};
}

double ExecState::load(SymbolId Arr, int64_t Off) {
  auto [Base, Idx] = resolve(Arr, Off);
  if (auto SIt = Shadows.find(Base); SIt != Shadows.end()) {
    Shadow &S = *SIt->second;
    if (Idx >= 0 && static_cast<size_t>(Idx) < S.Size) {
      int64_t W = S.Writer[Idx].load(std::memory_order_relaxed);
      if (W == -1) {
        // Exposed read (no write seen yet in this iteration's view).
        S.Reader[Idx].store(CurrentIter, std::memory_order_relaxed);
      } else if (W != CurrentIter) {
        Conflict->store(true, std::memory_order_relaxed);
      }
    }
  }
  std::vector<double> *V = nullptr;
  if (auto RIt = Redirect.find(Base); RIt != Redirect.end())
    V = RIt->second;
  else
    V = M.find(Base);
  assert(V && "load from unallocated array");
  assert(Idx >= 0 && static_cast<size_t>(Idx) < V->size() &&
         "array load out of bounds");
  return (*V)[Idx];
}

void ExecState::store(SymbolId Arr, int64_t Off, double Val,
                      bool IsReduction) {
  auto [Base, Idx] = resolve(Arr, Off);
  if (auto SIt = Shadows.find(Base); SIt != Shadows.end()) {
    Shadow &S = *SIt->second;
    if (Idx >= 0 && static_cast<size_t>(Idx) < S.Size) {
      int64_t Expected = -1;
      if (!S.Writer[Idx].compare_exchange_strong(
              Expected, CurrentIter, std::memory_order_relaxed) &&
          Expected != CurrentIter)
        Conflict->store(true, std::memory_order_relaxed);
      int64_t R = S.Reader[Idx].load(std::memory_order_relaxed);
      if (R != -1 && R != CurrentIter)
        Conflict->store(true, std::memory_order_relaxed);
    }
  }
  if (IsReduction) {
    if (auto RIt = RedBuf.find(Base); RIt != RedBuf.end()) {
      auto &V = *RIt->second;
      assert(Idx >= 0 && static_cast<size_t>(Idx) < V.size());
      V[Idx] += Val;
      return;
    }
    // Direct (injective) reduction update on the shared array.
    std::vector<double> *V = M.find(Base);
    assert(V && Idx >= 0 && static_cast<size_t>(Idx) < V->size());
    (*V)[Idx] += Val;
    return;
  }
  std::vector<double> *V = nullptr;
  if (auto RIt = Redirect.find(Base); RIt != Redirect.end())
    V = RIt->second;
  else
    V = M.find(Base);
  assert(V && "store to unallocated array");
  assert(Idx >= 0 && static_cast<size_t>(Idx) < V->size() &&
         "array store out of bounds");
  (*V)[Idx] = Val;
  if (auto WIt = WrittenMask.find(Base); WIt != WrittenMask.end())
    (*WIt->second)[Idx] = 1;
  if (auto DIt = Dlv.find(Base); DIt != Dlv.end()) {
    DlvBuf &D = *DIt->second;
    D.LastIter[Idx] = CurrentIter;
    D.Val[Idx] = Val;
  }
}

//===----------------------------------------------------------------------===//
// Core interpreter
//===----------------------------------------------------------------------===//

void rt::interpStmt(const Stmt *S, ExecState &St) {
  switch (S->getKind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    double V = 1.0;
    for (const ArrayAccess &R : A->getReads()) {
      int64_t Off = sym::eval(R.Offset, St.B);
      V += 0.5 * St.load(R.Array, Off);
    }
    if (A->getWorkCost())
      V = spinWork(A->getWorkCost(), V);
    if (A->getWrite()) {
      int64_t Off = sym::eval(A->getWrite()->Offset, St.B);
      St.store(A->getWrite()->Array, Off, V, A->isReduction());
    }
    return;
  }
  case StmtKind::DoLoop: {
    const auto *L = cast<DoLoop>(S);
    int64_t Lo = sym::eval(L->getLo(), St.B);
    int64_t Hi = sym::eval(L->getHi(), St.B);
    auto Saved = St.B.scalar(L->getVar());
    for (int64_t I = Lo; I <= Hi; ++I) {
      St.B.setScalar(L->getVar(), I);
      for (const Stmt *C : L->getBody())
        interpStmt(C, St);
    }
    if (Saved)
      St.B.setScalar(L->getVar(), *Saved);
    return;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    bool C = pdag::evalPred(I->getCond(), St.B);
    const auto &Branch = C ? I->getThen() : I->getElse();
    for (const Stmt *T : Branch)
      interpStmt(T, St);
    return;
  }
  case StmtKind::Call: {
    const auto *C = cast<CallStmt>(S);
    // Bind formal scalars (evaluated in the caller's state).
    std::vector<std::pair<SymbolId, std::optional<int64_t>>> SavedScalars;
    for (const CallStmt::ScalarArg &A : C->getScalarArgs()) {
      SavedScalars.emplace_back(A.Formal, St.B.scalar(A.Formal));
      St.B.setScalar(A.Formal, sym::eval(A.Actual, St.B));
    }
    // Extend the alias map for formal arrays.
    std::vector<std::pair<SymbolId, std::optional<std::pair<SymbolId, int64_t>>>>
        SavedAlias;
    for (const CallStmt::ArrayArg &A : C->getArrayArgs()) {
      auto It = St.Alias.find(A.Formal);
      SavedAlias.emplace_back(
          A.Formal, It == St.Alias.end()
                        ? std::nullopt
                        : std::optional<std::pair<SymbolId, int64_t>>(
                              It->second));
      St.Alias[A.Formal] = {A.Actual, sym::eval(A.Offset, St.B)};
    }
    for (const Stmt *T : C->getCallee()->getBody())
      interpStmt(T, St);
    for (auto &KV : SavedAlias) {
      if (KV.second)
        St.Alias[KV.first] = *KV.second;
      else
        St.Alias.erase(KV.first);
    }
    for (auto &KV : SavedScalars) {
      if (KV.second)
        St.B.setScalar(KV.first, *KV.second);
      // (Unbound formals simply keep the callee value; harmless.)
    }
    return;
  }
  case StmtKind::CivIncr: {
    const auto *CI = cast<CivIncrStmt>(S);
    int64_t Cur = St.B.scalar(CI->getCiv()).value_or(0);
    St.B.setScalar(CI->getCiv(), Cur + sym::eval(CI->getAmount(), St.B));
    return;
  }
  }
  halo_unreachable("covered switch");
}

void rt::interpStmts(const std::vector<const Stmt *> &Stmts, Memory &M,
                     sym::Bindings &B) {
  ExecState St(M, B);
  for (const Stmt *S : Stmts)
    interpStmt(S, St);
  B = St.B; // Propagate scalar updates (CIV values etc.).
}

void rt::interpSequential(const DoLoop &Loop, Memory &M, sym::Bindings &B) {
  ExecState St(M, B);
  interpStmt(&Loop, St);
  B = St.B;
}

//===----------------------------------------------------------------------===//
// CIV-COMP slice
//===----------------------------------------------------------------------===//

/// True when the subtree contains any CIV update.
static bool containsCiv(const Stmt *S) {
  switch (S->getKind()) {
  case StmtKind::CivIncr:
    return true;
  case StmtKind::Assign:
  case StmtKind::Call:
    return false;
  case StmtKind::DoLoop: {
    for (const Stmt *C : cast<DoLoop>(S)->getBody())
      if (containsCiv(C))
        return true;
    return false;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    for (const Stmt *C : I->getThen())
      if (containsCiv(C))
        return true;
    for (const Stmt *C : I->getElse())
      if (containsCiv(C))
        return true;
    return false;
  }
  }
  halo_unreachable("covered switch");
}

void rt::interpCivSlice(const DoLoop &Loop, const summary::CivPlan &Plan,
                        Memory &M, sym::Bindings &B) {
  (void)M; // The slice touches only control flow, CIVs and index arrays.
  if (Plan.empty())
    return;
  int64_t Lo = sym::eval(Loop.getLo(), B);
  int64_t Hi = sym::eval(Loop.getHi(), B);
  int64_t N = Hi - Lo + 1;
  if (N < 0)
    N = 0;

  std::map<SymbolId, std::vector<int64_t>> Entry;   // Civ -> values.
  std::map<SymbolId, std::vector<int64_t>> JoinVal; // JoinArr -> values.
  for (const summary::CivDesc &D : Plan.Civs)
    Entry[D.Civ].assign(static_cast<size_t>(N) + 1, 0);
  for (const summary::CivJoin &J : Plan.Joins)
    JoinVal[J.JoinArr].assign(static_cast<size_t>(N), 0);

  sym::Bindings Slice = B;
  // Walks only control flow and CIV updates; records joins.
  std::function<void(const Stmt *, int64_t)> Walk =
      [&](const Stmt *S, int64_t IterIdx) {
        switch (S->getKind()) {
        case StmtKind::Assign:
        case StmtKind::Call:
          return;
        case StmtKind::CivIncr: {
          const auto *CI = cast<CivIncrStmt>(S);
          int64_t Cur = Slice.scalar(CI->getCiv()).value_or(0);
          Slice.setScalar(CI->getCiv(),
                          Cur + sym::eval(CI->getAmount(), Slice));
          return;
        }
        case StmtKind::DoLoop: {
          const auto *L = cast<DoLoop>(S);
          if (!containsCiv(L))
            return;
          int64_t L2 = sym::eval(L->getLo(), Slice);
          int64_t H2 = sym::eval(L->getHi(), Slice);
          for (int64_t J = L2; J <= H2; ++J) {
            Slice.setScalar(L->getVar(), J);
            for (const Stmt *C : L->getBody())
              Walk(C, IterIdx);
          }
          return;
        }
        case StmtKind::If: {
          const auto *I = cast<IfStmt>(S);
          bool C = pdag::evalPred(I->getCond(), Slice);
          for (const Stmt *T : C ? I->getThen() : I->getElse())
            Walk(T, IterIdx);
          // Record joined CIV values for this iteration.
          for (const summary::CivJoin &J : Plan.Joins)
            if (J.At == I)
              JoinVal[J.JoinArr][static_cast<size_t>(IterIdx)] =
                  Slice.scalar(J.Civ).value_or(0);
          return;
        }
        }
        halo_unreachable("covered switch");
      };

  for (int64_t I = Lo; I <= Hi; ++I) {
    size_t Idx = static_cast<size_t>(I - Lo);
    for (const summary::CivDesc &D : Plan.Civs)
      Entry[D.Civ][Idx] = Slice.scalar(D.Civ).value_or(0);
    Slice.setScalar(Loop.getVar(), I);
    for (const Stmt *S : Loop.getBody())
      Walk(S, static_cast<int64_t>(Idx));
  }
  for (const summary::CivDesc &D : Plan.Civs)
    Entry[D.Civ][static_cast<size_t>(N)] = Slice.scalar(D.Civ).value_or(0);

  // Publish the pseudo arrays (1-based on the iteration index).
  for (const summary::CivDesc &D : Plan.Civs) {
    sym::ArrayBinding A;
    A.Lo = Lo;
    A.Vals = std::move(Entry[D.Civ]);
    B.setArray(D.EntryArr, std::move(A));
  }
  for (const summary::CivJoin &J : Plan.Joins) {
    sym::ArrayBinding A;
    A.Lo = Lo;
    A.Vals = std::move(JoinVal[J.JoinArr]);
    B.setArray(J.JoinArr, std::move(A));
  }
}

//===----------------------------------------------------------------------===//
// BOUNDS-COMP
//===----------------------------------------------------------------------===//

static bool boundsOf(const usr::USR *S, sym::Bindings &B, int64_t &Lo,
                     int64_t &Hi, bool &Any) {
  using namespace halo::usr;
  switch (S->getKind()) {
  case USRKind::Empty:
    return true;
  case USRKind::Leaf: {
    for (const lmad::LMAD &L : cast<LeafUSR>(S)->getLMADs()) {
      auto Off = sym::tryEval(L.offset(), B);
      if (!Off)
        return false;
      int64_t Max = *Off;
      bool Empty = false;
      for (const lmad::Dim &D : L.dims()) {
        auto Sp = sym::tryEval(D.Span, B);
        if (!Sp)
          return false;
        if (*Sp < 0)
          Empty = true;
        else
          Max += *Sp;
      }
      if (Empty)
        continue;
      Lo = Any ? std::min(Lo, *Off) : *Off;
      Hi = Any ? std::max(Hi, Max) : Max;
      Any = true;
    }
    return true;
  }
  case USRKind::Union: {
    for (const usr::USR *C : cast<UnionUSR>(S)->getChildren())
      if (!boundsOf(C, B, Lo, Hi, Any))
        return false;
    return true;
  }
  case USRKind::CallSite:
    return boundsOf(cast<CallSiteUSR>(S)->getChild(), B, Lo, Hi, Any);
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(S);
    auto L2 = sym::tryEval(R->getLo(), B);
    auto H2 = sym::tryEval(R->getHi(), B);
    if (!L2 || !H2)
      return false;
    auto Saved = B.scalar(R->getVar());
    bool Ok = true;
    for (int64_t I = *L2; I <= *H2 && Ok; ++I) {
      B.setScalar(R->getVar(), I);
      Ok = boundsOf(R->getBody(), B, Lo, Hi, Any);
    }
    if (Saved)
      B.setScalar(R->getVar(), *Saved);
    return Ok;
  }
  case USRKind::Intersect:
  case USRKind::Subtract:
  case USRKind::Gate:
    halo_unreachable("bounds USR must be stripped (stripForBounds)");
  }
  halo_unreachable("covered switch");
}

bool rt::interpBounds(const usr::USR *S, sym::Bindings &B, ThreadPool &Pool,
                      int64_t &Lo, int64_t &Hi) {
  // Parallel MIN/MAX reduction over the top-level recurrence (Fig. 7a).
  if (const auto *R = dyn_cast<usr::RecurUSR>(S)) {
    auto L2 = sym::tryEval(R->getLo(), B);
    auto H2 = sym::tryEval(R->getHi(), B);
    if (L2 && H2 && *H2 >= *L2) {
      unsigned NB = Pool.numThreads();
      std::vector<int64_t> Los(NB, 0), His(NB, 0);
      std::vector<uint8_t> Anys(NB, 0), Oks(NB, 1);
      Pool.parallelForBlocked(
          *L2, *H2 + 1, [&](int64_t BLo, int64_t BHi, unsigned T) {
            sym::Bindings Local = B;
            int64_t L3 = 0, H3 = 0;
            bool Any = false, Ok = true;
            for (int64_t I = BLo; I < BHi && Ok; ++I) {
              Local.setScalar(R->getVar(), I);
              Ok = boundsOf(R->getBody(), Local, L3, H3, Any);
            }
            Los[T] = L3;
            His[T] = H3;
            Anys[T] = Any;
            Oks[T] = Ok;
          });
      bool Any = false;
      for (unsigned T = 0; T < NB; ++T) {
        if (!Oks[T])
          return false;
        if (!Anys[T])
          continue;
        Lo = Any ? std::min(Lo, Los[T]) : Los[T];
        Hi = Any ? std::max(Hi, His[T]) : His[T];
        Any = true;
      }
      if (!Any) {
        Lo = 0;
        Hi = -1;
      }
      return true;
    }
  }
  bool Any = false;
  if (!boundsOf(S, B, Lo, Hi, Any))
    return false;
  if (!Any) {
    Lo = 0;
    Hi = -1;
  }
  return true;
}
