//===- rt/CompiledCascade.cpp - Plan-time cascade compilation -------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "rt/CompiledCascade.h"

#include "support/FaultInjection.h"
#include "usr/USREval.h"

#include <algorithm>
#include <limits>

using namespace halo;
using namespace halo::rt;

const pdag::CompiledPred *PredCompileCache::get(const pdag::Pred *P) {
  // Compilation runs under the lock: simple, and write traffic only
  // exists at plan time (config-exclusive under the serving layer), so
  // the serving path pays one uncontended lock per lookup at most.
  std::lock_guard<std::mutex> L(M);
  auto It = Cache.find(P);
  if (It != Cache.end())
    return It->second.get();
  support::faultAt("rt.compile.pred");
  auto CP = pdag::CompiledPred::compile(P, Sym);
  return Cache.emplace(P, std::move(CP)).first->second.get();
}

USRCompileCache::Entry &USRCompileCache::entryForLocked(const usr::USR *S) {
  auto It = Cache.find(S);
  if (It != Cache.end())
    return It->second;
  support::faultAt("rt.compile.usr");
  Entry E;
  E.Code = usr::CompiledUSR::compile(
      S, Sym, [this](const pdag::Pred *P) { return Preds.get(P); });
  return Cache.emplace(S, std::move(E)).first->second;
}

const usr::CompiledUSR *USRCompileCache::get(const usr::USR *S) {
  std::lock_guard<std::mutex> L(M);
  return entryForLocked(S).Code.get();
}

std::optional<bool> USRCompileCache::emptiness(const usr::USR *S,
                                               const sym::Bindings &B,
                                               ThreadPool *Pool,
                                               usr::USREvalStats *Stats,
                                               USRFramePool *Frames,
                                               const support::CancelToken
                                                   *Cancel,
                                               bool BlockGates) {
  const usr::CompiledUSR *Code;
  usr::CompiledUSR::PooledFrame *F;
  {
    std::lock_guard<std::mutex> L(M);
    Entry &E = entryForLocked(S);
    Code = E.Code.get();
    // The per-entry fallback frame is shared cache state: only sound for
    // single-threaded callers. Concurrent callers must pass a pool.
    F = Frames ? nullptr : &E.Frame;
  }
  if (!Code) {
    // Lowering tripped a resource guard (CompiledUSR::compile returned
    // null — nesting or bytecode-size cap): demote this exact test to the
    // reference interpreter instead of failing the execution. Correct
    // either way; only slower, and counted.
    if (support::stopRequested(Cancel))
      return std::nullopt;
    if (Stats)
      ++Stats->GuardDemotions;
    sym::Bindings Local(B);
    return usr::evalUSREmpty(S, Local, 1u << 22, Stats);
  }
  if (Frames)
    F = &Frames->frameFor(Code);
  if (support::stopRequested(Cancel))
    return std::nullopt; // No answer for an aborted evaluation.
  if (Pool && Pool->numThreads() > 1 && Code->hasParallelRoot())
    return Code->evalEmptyParallel(*F, B, *Pool, 1u << 22, Stats, 2048,
                                   Cancel, BlockGates);
  return Code->evalEmptyPooled(*F, B, 1u << 22, Stats, BlockGates);
}

CompiledCascade CompiledCascade::build(const analysis::TestCascade &C,
                                       PredCompileCache &Cache) {
  CompiledCascade Out;
  Out.StaticallyTrue = C.StaticallyTrue;
  if (C.StaticallyTrue)
    return Out;
  Out.Stages.reserve(C.Stages.size());
  for (const pdag::CascadeStage &St : C.Stages)
    Out.Stages.push_back(Stage{&St, Cache.get(St.P)});
  // Cheapest-first by compiled cost estimate: buildCascade orders by loop
  // depth alone, the bytecode length refines ties between same-depth
  // stages. Done once here, at plan time. A stage whose predicate tripped
  // a lowering guard (null Code — the governor interprets it instead)
  // sorts last: interpreted evaluation is the most expensive tier.
  if (Out.Stages.size() > 1)
    std::stable_sort(Out.Stages.begin(), Out.Stages.end(),
                     [](const Stage &A, const Stage &B) {
                       uint64_t CA = A.Code ? A.Code->costEstimate()
                                            : std::numeric_limits<uint64_t>::max();
                       uint64_t CB = B.Code ? B.Code->costEstimate()
                                            : std::numeric_limits<uint64_t>::max();
                       return CA < CB;
                     });
  return Out;
}

PlanCascades PlanCascades::build(const analysis::LoopPlan &Plan,
                                 PredCompileCache &Cache) {
  PlanCascades Out;
  Out.Arrays.resize(Plan.Arrays.size());
  for (size_t I = 0; I < Plan.Arrays.size(); ++I) {
    const analysis::ArrayPlan &AP = Plan.Arrays[I];
    if (AP.ReadOnly)
      continue;
    ArrayCascades &AC = Out.Arrays[I];
    AC.Flow = CompiledCascade::build(AP.Flow, Cache);
    AC.Output = CompiledCascade::build(AP.Output, Cache);
    AC.Priv = CompiledCascade::build(AP.Priv, Cache);
    AC.Slv = CompiledCascade::build(AP.Slv, Cache);
    AC.RRed = CompiledCascade::build(AP.RRed, Cache);
    AC.ExtRedFlow = CompiledCascade::build(AP.ExtRedFlow, Cache);
  }
  return Out;
}
