//===- rt/CompiledCascade.cpp - Plan-time cascade compilation -------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "rt/CompiledCascade.h"

#include "support/FaultInjection.h"
#include "usr/USREval.h"

#include <algorithm>
#include <limits>

using namespace halo;
using namespace halo::rt;

const pdag::CompiledPred *PredCompileCache::get(const pdag::Pred *P) {
  // Compilation runs under the lock: simple, and write traffic only
  // exists at plan time (config-exclusive under the serving layer), so
  // the serving path pays one uncontended lock per lookup at most.
  support::MutexLock L(M);
  auto It = Cache.find(P);
  if (It != Cache.end())
    return It->second.get();
  support::faultAt("rt.compile.pred");
  auto CP = pdag::CompiledPred::compile(P, Sym);
  return Cache.emplace(P, std::move(CP)).first->second.get();
}

USRCompileCache::Entry &USRCompileCache::entryForLocked(const usr::USR *S) {
  auto It = Cache.find(S);
  if (It != Cache.end())
    return It->second;
  support::faultAt("rt.compile.usr");
  // Compile before inserting so a throwing compilation leaves no
  // half-made entry; Entry itself is pinned in place (it owns a mutex).
  auto Code = usr::CompiledUSR::compile(
      S, Sym, [this](const pdag::Pred *P) { return Preds.get(P); });
  Entry &E = Cache[S];
  E.Code = std::move(Code);
  return E;
}

const usr::CompiledUSR *USRCompileCache::get(const usr::USR *S) {
  support::MutexLock L(M);
  return entryForLocked(S).Code.get();
}

std::optional<bool> USRCompileCache::emptiness(const usr::USR *S,
                                               const sym::Bindings &B,
                                               ThreadPool *Pool,
                                               usr::USREvalStats *Stats,
                                               USRFramePool *Frames,
                                               const support::CancelToken
                                                   *Cancel,
                                               bool BlockGates) {
  Entry *E;
  {
    // Probe/insert under the cache mutex; everything below (the
    // evaluation) runs outside it. Entry references are stable
    // (node-based map).
    support::MutexLock L(M);
    E = &entryForLocked(S);
  }
  const usr::CompiledUSR *Code = E->Code.get();
  if (!Code) {
    // Lowering tripped a resource guard (CompiledUSR::compile returned
    // null — nesting or bytecode-size cap): demote this exact test to the
    // reference interpreter instead of failing the execution. Correct
    // either way; only slower, and counted.
    if (support::stopRequested(Cancel))
      return std::nullopt;
    if (Stats)
      ++Stats->GuardDemotions;
    sym::Bindings Local(B);
    return usr::evalUSREmpty(S, Local, 1u << 22, Stats);
  }
  if (support::stopRequested(Cancel))
    return std::nullopt; // No answer for an aborted evaluation.
  auto Eval =
      [&](usr::CompiledUSR::PooledFrame &F) -> std::optional<bool> {
    if (Pool && Pool->numThreads() > 1 && Code->hasParallelRoot())
      return Code->evalEmptyParallel(F, B, *Pool, 1u << 22, Stats, 2048,
                                     Cancel, BlockGates);
    return Code->evalEmptyPooled(F, B, 1u << 22, Stats, BlockGates);
  };
  if (Frames)
    return Eval(Frames->frameFor(Code));
  // Frameless callers share the entry's fallback frame (mutable bind
  // stamps and prefix caches): hold its mutex across the whole
  // evaluation so two concurrent frameless callers serialize instead of
  // racing on frame state. Pool-carrying callers never touch this path.
  support::MutexLock FL(E->FallbackM);
  return Eval(E->Frame);
}

CompiledCascade CompiledCascade::build(const analysis::TestCascade &C,
                                       PredCompileCache &Cache) {
  CompiledCascade Out;
  Out.StaticallyTrue = C.StaticallyTrue;
  if (C.StaticallyTrue)
    return Out;
  Out.Stages.reserve(C.Stages.size());
  for (const pdag::CascadeStage &St : C.Stages)
    Out.Stages.push_back(Stage{&St, Cache.get(St.P)});
  // Cheapest-first by compiled cost estimate: buildCascade orders by loop
  // depth alone, the bytecode length refines ties between same-depth
  // stages. Done once here, at plan time. A stage whose predicate tripped
  // a lowering guard (null Code — the governor interprets it instead)
  // sorts last: interpreted evaluation is the most expensive tier.
  if (Out.Stages.size() > 1)
    std::stable_sort(Out.Stages.begin(), Out.Stages.end(),
                     [](const Stage &A, const Stage &B) {
                       uint64_t CA = A.Code ? A.Code->costEstimate()
                                            : std::numeric_limits<uint64_t>::max();
                       uint64_t CB = B.Code ? B.Code->costEstimate()
                                            : std::numeric_limits<uint64_t>::max();
                       return CA < CB;
                     });
  return Out;
}

PlanCascades PlanCascades::build(const analysis::LoopPlan &Plan,
                                 PredCompileCache &Cache) {
  PlanCascades Out;
  Out.Arrays.resize(Plan.Arrays.size());
  for (size_t I = 0; I < Plan.Arrays.size(); ++I) {
    const analysis::ArrayPlan &AP = Plan.Arrays[I];
    if (AP.ReadOnly)
      continue;
    ArrayCascades &AC = Out.Arrays[I];
    AC.Flow = CompiledCascade::build(AP.Flow, Cache);
    AC.Output = CompiledCascade::build(AP.Output, Cache);
    AC.Priv = CompiledCascade::build(AP.Priv, Cache);
    AC.Slv = CompiledCascade::build(AP.Slv, Cache);
    AC.RRed = CompiledCascade::build(AP.RRed, Cache);
    AC.ExtRedFlow = CompiledCascade::build(AP.ExtRedFlow, Cache);
  }
  return Out;
}
