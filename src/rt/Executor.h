//===- rt/Executor.h - Runtime: the execution governor ---------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime *governor* standing in for the paper's OpenMP runtime
/// (Sec. 5): under a LoopPlan it precomputes CIV values (CIV-COMP),
/// evaluates the predicate cascades cheapest-first, decides per-array
/// strategies (shared / privatized / SLV / DLV / reduction private copies
/// / direct reduction), falls back to exact USR evaluation (optionally
/// memoized — HOIST-USR) or LRPD speculation, and finally executes the
/// loop across a thread pool with the chosen techniques.
///
/// Plain statement interpretation lives in the substrate layer
/// (rt/Interp.h); plan-time cascade compilation and frame pooling in
/// rt/CompiledCascade.h. A standalone Executor compiles cascades lazily
/// through its own cache; the session layer (session/Session.h) instead
/// hands in pre-built PlanCascades and a leased rt::ExecContext so
/// repeated executions of the same plan do no per-execution setup at all
/// — and so concurrent executions never share mutable frames.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_RT_EXECUTOR_H
#define HALO_RT_EXECUTOR_H

#include "analysis/Analyzer.h"
#include "rt/CompiledCascade.h"
#include "rt/Interp.h"
#include "rt/Memory.h"
#include "support/Hashing.h"
#include "support/ThreadPool.h"
#include "sym/Eval.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace halo {
namespace rt {

/// How one loop execution was resolved (for RTov and table reporting).
struct ExecStats {
  /// Whether (and why) the execution was abandoned before producing a
  /// result. A non-None reason means the caller's Memory/Bindings were
  /// either left untouched or reflect only fully-completed repeats —
  /// cancellation only fires *between* units of work, never mid-body.
  enum class AbortReason : uint8_t { None = 0, Cancelled, Expired };
  AbortReason Aborted = AbortReason::None;

  double TotalSeconds = 0;
  double PredicateSeconds = 0; ///< Cascade evaluation time.
  double CivSliceSeconds = 0;  ///< CIV-COMP precomputation time.
  double ExactTestSeconds = 0; ///< Inspector (exact USR) time.
  double BoundsCompSeconds = 0;
  bool RanParallel = false;
  bool UsedExactTest = false;
  bool UsedTLS = false;
  bool TLSSucceeded = false;
  int CascadeDepthUsed = -1; ///< Depth of the first successful stage.
  uint64_t PredicateLeafEvals = 0;
  /// Invariant sub-predicate results served from the bytecode evaluator's
  /// per-evaluation memo table.
  uint64_t PredMemoHits = 0;
  /// Cascade stages evaluated through compiled bytecode vs. through the
  /// reference tree interpreter (the compiled/interpreted split the RTov
  /// harness reports). Each stage evaluation is counted exactly once, by
  /// the governor, on whichever path it took — the two columns are
  /// symmetric and cannot double-count.
  uint64_t CompiledPredEvals = 0;
  uint64_t InterpPredEvals = 0;
  /// Frame-pooling effectiveness (session executions only): full symbol
  /// binds vs. evaluations that reused the pooled frame unchanged.
  uint64_t FrameBinds = 0;
  uint64_t FrameRebindsSkipped = 0;
  /// Exact-test (HOIST-USR fallback) evaluations routed through the
  /// compiled interval-run engine vs. the reference interpreter,
  /// governor-counted symmetrically like the predicate split above.
  /// HoistCache hits evaluate nothing and count as neither.
  uint64_t CompiledUSREvals = 0;
  uint64_t InterpUSREvals = 0;
  /// Interval runs produced by compiled exact tests and the point
  /// enumerations they made unnecessary (usr::USREvalStats).
  uint64_t USRRunsProduced = 0;
  uint64_t USRPointsAvoided = 0;
  /// Block-vectorized vs. scalar compiled dispatches (the governor's A/B
  /// split): predicate-side whole-evaluations (pdag::EvalStats) plus
  /// USR-side batched gate probes (usr::USREvalStats GateBlockEvals /
  /// GateScalarEvals), folded into one pair of columns.
  uint64_t BlockEvals = 0;
  uint64_t ScalarEvals = 0;
  /// Block-tier lanes degraded to conservative-unknown by an unbound
  /// scalar or out-of-bounds read (that lane only, never the block).
  uint64_t LanesPoisoned = 0;
  /// Evaluations demoted from the compiled engines to the reference
  /// interpreters because lowering tripped a resource guard (nesting or
  /// bytecode-size cap — see pdag/ExprCode.h). Covers both cascade stages
  /// whose predicate failed to lower and exact tests whose USR failed to
  /// lower; semantically identical, only slower, and visible here.
  uint64_t GuardDemotions = 0;

  /// Accumulates \p O into this: times and event counters sum, the
  /// boolean outcomes OR (e.g. `RanParallel` means "any accumulated
  /// execution ran parallel") and CascadeDepthUsed keeps the deepest
  /// stage. The serving layer folds per-request stats into per-shard
  /// totals with this.
  ExecStats &operator+=(const ExecStats &O) {
    if (Aborted == AbortReason::None)
      Aborted = O.Aborted; // First latched abort reason wins.
    TotalSeconds += O.TotalSeconds;
    PredicateSeconds += O.PredicateSeconds;
    CivSliceSeconds += O.CivSliceSeconds;
    ExactTestSeconds += O.ExactTestSeconds;
    BoundsCompSeconds += O.BoundsCompSeconds;
    RanParallel |= O.RanParallel;
    UsedExactTest |= O.UsedExactTest;
    UsedTLS |= O.UsedTLS;
    TLSSucceeded |= O.TLSSucceeded;
    CascadeDepthUsed = CascadeDepthUsed > O.CascadeDepthUsed
                           ? CascadeDepthUsed
                           : O.CascadeDepthUsed;
    PredicateLeafEvals += O.PredicateLeafEvals;
    PredMemoHits += O.PredMemoHits;
    CompiledPredEvals += O.CompiledPredEvals;
    InterpPredEvals += O.InterpPredEvals;
    FrameBinds += O.FrameBinds;
    FrameRebindsSkipped += O.FrameRebindsSkipped;
    CompiledUSREvals += O.CompiledUSREvals;
    InterpUSREvals += O.InterpUSREvals;
    USRRunsProduced += O.USRRunsProduced;
    USRPointsAvoided += O.USRPointsAvoided;
    BlockEvals += O.BlockEvals;
    ScalarEvals += O.ScalarEvals;
    LanesPoisoned += O.LanesPoisoned;
    GuardDemotions += O.GuardDemotions;
    return *this;
  }
};

/// Memoization cache for hoisted exact tests (HOIST-USR, Sec. 5): the
/// emptiness result of an independence USR is reused across repeated
/// executions with identical relevant inputs.
///
/// Keyed by (USR identity, hash of the relevant bindings); every entry
/// additionally stores an independent verification hash of the same
/// inputs, so a primary-hash collision is detected and answered by
/// falling back to exact evaluation instead of silently returning the
/// colliding entry's emptiness answer.
///
/// Internally synchronized: concurrent emptiness() probes are safe, and
/// the memo stays shared across every concurrent execution of a session
/// (the amortization is per loop, not per worker). The lock covers only
/// the map probe/insert; evaluation of a miss runs outside it, so two
/// simultaneous first requests may both evaluate — duplicated work, same
/// inserted answer, never a wrong one.
class HoistCache {
public:
  /// Returns the cached emptiness answer, or evaluates and caches it.
  /// Nullopt when evaluation itself fails. A miss evaluates through the
  /// compiled interval-run engine when \p Compiled is given (chunking a
  /// root recurrence across \p Pool, pooled frames from \p Frames — see
  /// USRCompileCache::emptiness), through the reference interpreter
  /// otherwise.
  /// A fired \p Cancel token makes the evaluation of a miss bail and
  /// return nullopt — a cancelled evaluation has no answer and is never
  /// cached, so an aborted request can never poison the memo.
  std::optional<bool> emptiness(const usr::USR *S, sym::Bindings &B,
                                const sym::Context &Ctx, bool &WasHit,
                                USRCompileCache *Compiled = nullptr,
                                ThreadPool *Pool = nullptr,
                                usr::USREvalStats *Stats = nullptr,
                                USRFramePool *Frames = nullptr,
                                const support::CancelToken *Cancel = nullptr,
                                bool BlockGates = true) HALO_EXCLUDES(M);

  size_t size() const HALO_EXCLUDES(M) {
    support::MutexLock L(M);
    return Cache.size();
  }
  /// Primary-hash collisions detected via the verification hash (the
  /// silent-wrong-answer case before it carried one).
  uint64_t collisions() const HALO_EXCLUDES(M) {
    support::MutexLock L(M);
    return Collisions;
  }

private:
  struct Key {
    const usr::USR *S;
    uint64_t Hash;
    bool operator==(const Key &O) const {
      return S == O.S && Hash == O.Hash;
    }
  };
  struct KeyHasher {
    size_t operator()(const Key &K) const {
      size_t H = std::hash<const usr::USR *>{}(K.S);
      hashCombine(H, static_cast<size_t>(K.Hash));
      return H;
    }
  };
  struct Entry {
    uint64_t Verify; ///< Independent hash of the same inputs.
    bool Empty;
  };
  mutable support::Mutex M;
  /// Probe/insert under M; miss evaluation runs outside it (two
  /// simultaneous first requests may both evaluate — duplicated work,
  /// same inserted answer, never a wrong one).
  std::unordered_map<Key, Entry, KeyHasher> Cache HALO_GUARDED_BY(M);
  uint64_t Collisions HALO_GUARDED_BY(M) = 0;
};

/// Executes analyzed loops under their plans (and plain programs through
/// the interpreter substrate).
class Executor {
public:
  Executor(ir::Program &Prog, usr::USRContext &Ctx)
      : Prog(Prog), Ctx(Ctx), Sym(Ctx.symCtx()), OwnCompile(Ctx.symCtx()),
        OwnUsrCompile(Ctx.symCtx(), OwnCompile) {}

  /// Plain sequential interpretation of a statement list.
  void runStmts(const std::vector<const ir::Stmt *> &Stmts, Memory &M,
                sym::Bindings &B);

  /// Sequential execution of one loop (the timing baseline).
  void runSequential(const ir::DoLoop &Loop, Memory &M, sym::Bindings &B);

  /// Hybrid execution under a plan: predicate cascades, technique
  /// selection, exact-test / TLS fallback, parallel interpretation.
  /// \p Pre, \p Ctx and \p UsrCompile are the session-provided plan-time
  /// and per-execution artifacts: when present, cascade stage vectors are
  /// neither rebuilt nor re-sorted per execution, predicate and USR
  /// frames come pooled from \p Ctx, and exact tests run the
  /// session-cached compiled USRs (a standalone executor compiles lazily
  /// through its own caches). With \p Pre and \p Ctx supplied this method
  /// mutates no executor state, so concurrent calls are safe as long as
  /// every caller brings its own Memory/Bindings/ExecContext (the
  /// serving layer's intra-shard concurrency contract).
  ExecStats runPlanned(const analysis::LoopPlan &Plan, Memory &M,
                       sym::Bindings &B, ThreadPool &Pool,
                       HoistCache *Hoist = nullptr,
                       const PlanCascades *Pre = nullptr,
                       ExecContext *Ctx = nullptr,
                       USRCompileCache *UsrCompile = nullptr);

  /// CIV-COMP: precomputes civ@pre / join pseudo-arrays into \p B by a
  /// sequential slice of the loop (only control flow and CIV updates).
  void runCivSlice(const ir::DoLoop &Loop, const summary::CivPlan &Plan,
                   Memory &M, sym::Bindings &B);

  /// BOUNDS-COMP: evaluates the min/max touched offsets of \p S in
  /// parallel (Fig. 7a). Returns false on evaluation failure.
  bool computeBounds(const usr::USR *S, sym::Bindings &B, ThreadPool &Pool,
                     int64_t &Lo, int64_t &Hi);

  /// Switches cascade evaluation between the compiled bytecode evaluator
  /// (default) and the reference tree interpreter. The interpreter path is
  /// kept for A/B overhead measurement (bench/rtov_overhead.cpp) and as
  /// the cross-check oracle in tests.
  void setUseCompiledPredicates(bool Use) { UseCompiledPreds = Use; }
  bool useCompiledPredicates() const { return UseCompiledPreds; }

  /// Switches exact-test (HOIST-USR fallback) evaluation between the
  /// compiled interval-run engine (default) and the reference
  /// interpreter (usr::evalUSREmpty) — the A/B measurement and parity
  /// oracle for the compiled-USR layer.
  void setUseCompiledUSRs(bool Use) { UseCompiledUSRs = Use; }
  bool useCompiledUSRs() const { return UseCompiledUSRs; }

  /// Switches the block-vectorized evaluation tier (default on): compiled
  /// cascade stages select block vs. scalar sweeps per stage under the
  /// Auto policy (pdag::BlockEval::Auto), and exact-test gate predicates
  /// batch their recurrence sweeps. Off pins everything to the scalar
  /// bytecode tier — the A/B baseline bench/rtov_overhead.cpp measures
  /// against. Results are bit-identical either way.
  void setUseBlockEval(bool Use) { UseBlockEval = Use; }
  bool useBlockEval() const { return UseBlockEval; }

  /// Number of distinct cascade-stage predicates compiled by this
  /// executor's own lazy cache (standalone use; sessions compile through
  /// their shared PredCompileCache instead).
  size_t numCompiledPreds() const { return OwnCompile.size(); }
  /// Same for independence USRs compiled by the executor's own cache.
  size_t numCompiledUSRs() const { return OwnUsrCompile.size(); }

private:
  bool runSpeculative(const analysis::LoopPlan &Plan, Memory &M,
                      sym::Bindings &B, ThreadPool &Pool, ExecStats &Stats);

  /// Evaluates a cascade cheapest-first (by compiled cost estimate) and
  /// returns the stage depth used (-1 static, -2 all failed). O(N)+
  /// stages run through the chunked parallel and-reduction. \p Pre is the
  /// plan-time compiled cascade when the caller has one.
  /// \p Cancel adds a poll before every stage: a fired token aborts the
  /// cascade and returns -3 (no stage answer — distinct from -2 "all
  /// stages failed", which routes to fallbacks).
  int runCascade(const analysis::TestCascade &C, const CompiledCascade *Pre,
                 sym::Bindings &B, ThreadPool &Pool, ExecStats &Stats,
                 FramePool *Frames, const support::CancelToken *Cancel);

  ir::Program &Prog;
  usr::USRContext &Ctx;
  sym::Context &Sym;
  /// Lazy compile-once caches for standalone (non-session) use.
  PredCompileCache OwnCompile;
  USRCompileCache OwnUsrCompile;
  bool UseCompiledPreds = true;
  bool UseCompiledUSRs = true;
  bool UseBlockEval = true;
};

} // namespace rt
} // namespace halo

#endif // HALO_RT_EXECUTOR_H
