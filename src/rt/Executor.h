//===- rt/Executor.h - Runtime: conditional parallel execution -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate standing in for the paper's OpenMP runtime
/// (Sec. 5). The same mini-IR that was analyzed is interpreted here:
///
///  - sequentially (the baseline timing),
///  - or under a LoopPlan: the runtime *governor* precomputes CIV values
///    (CIV-COMP), evaluates the predicate cascades cheapest-first, decides
///    per-array strategies (shared / privatized / SLV / DLV / reduction
///    private copies / direct reduction), falls back to exact USR
///    evaluation (optionally memoized — HOIST-USR) or LRPD speculation,
///    and finally executes the loop across a thread pool with the chosen
///    techniques.
///
/// Interpretation cost applies equally to sequential and parallel
/// executions, so normalized timings (Figs. 10-13) retain their shape.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_RT_EXECUTOR_H
#define HALO_RT_EXECUTOR_H

#include "analysis/Analyzer.h"
#include "pdag/PredCompile.h"
#include "support/ThreadPool.h"
#include "sym/Eval.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace halo {
namespace rt {

/// Data-array storage (doubles); integer index arrays live in
/// sym::Bindings.
///
/// find() sits on the interpreted-loop hot path (every load/store resolves
/// its base array through it, from every worker thread), so lookups go
/// through a hash map with a per-thread last-lookup cache: loop bodies hit
/// the same handful of arrays on every statement. The cache is validated
/// against a version stamp drawn from a process-global counter on every
/// mutation, so a stamp is never reused — not even by a different Memory
/// instance reincarnated at the same address (stack-allocated Memories in
/// back-to-back tests would otherwise alias a stale cache entry).
class Memory {
public:
  Memory() = default;
  Memory(const Memory &) = delete;
  Memory &operator=(const Memory &) = delete;

  std::vector<double> &alloc(sym::SymbolId Id, size_t Elems) {
    bumpVersion();
    auto &V = Arrays[Id];
    V.assign(Elems, 0.0);
    return V;
  }
  std::vector<double> *find(sym::SymbolId Id) {
    struct LastLookup {
      const Memory *M = nullptr;
      uint64_t Version = 0;
      sym::SymbolId Id = 0;
      std::vector<double> *V = nullptr;
    };
    thread_local LastLookup Last;
    const uint64_t Ver = Version.load(std::memory_order_relaxed);
    if (Last.M == this && Last.Version == Ver && Last.Id == Id)
      return Last.V;
    auto It = Arrays.find(Id);
    std::vector<double> *V = It == Arrays.end() ? nullptr : &It->second;
    Last = LastLookup{this, Ver, Id, V};
    return V;
  }
  const std::unordered_map<sym::SymbolId, std::vector<double>> &
  arrays() const {
    return Arrays;
  }
  /// Mutable access invalidates the per-thread lookup caches (callers
  /// replace whole arrays, e.g. the misspeculation rollback).
  std::unordered_map<sym::SymbolId, std::vector<double>> &arrays() {
    bumpVersion();
    return Arrays;
  }

private:
  void bumpVersion() {
    static std::atomic<uint64_t> GlobalVersion{1};
    Version.store(GlobalVersion.fetch_add(1, std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
  }

  std::unordered_map<sym::SymbolId, std::vector<double>> Arrays;
  std::atomic<uint64_t> Version{0};
};

/// How one loop execution was resolved (for RTov and table reporting).
struct ExecStats {
  double TotalSeconds = 0;
  double PredicateSeconds = 0; ///< Cascade evaluation time.
  double CivSliceSeconds = 0;  ///< CIV-COMP precomputation time.
  double ExactTestSeconds = 0; ///< Inspector (exact USR) time.
  double BoundsCompSeconds = 0;
  bool RanParallel = false;
  bool UsedExactTest = false;
  bool UsedTLS = false;
  bool TLSSucceeded = false;
  int CascadeDepthUsed = -1; ///< Depth of the first successful stage.
  uint64_t PredicateLeafEvals = 0;
  /// Invariant sub-predicate results served from the bytecode evaluator's
  /// per-evaluation memo table.
  uint64_t PredMemoHits = 0;
  /// Cascade stages evaluated through compiled bytecode vs. through the
  /// reference tree interpreter (the compiled/interpreted split the RTov
  /// harness reports).
  uint64_t CompiledPredEvals = 0;
  uint64_t InterpPredEvals = 0;
};

/// Memoization cache for hoisted exact tests (HOIST-USR, Sec. 5): the
/// emptiness result of an independence USR is reused across repeated
/// executions with identical relevant inputs.
class HoistCache {
public:
  /// Returns the cached emptiness answer, or evaluates and caches it.
  /// Nullopt when evaluation itself fails.
  std::optional<bool> emptiness(const usr::USR *S, sym::Bindings &B,
                                const sym::Context &Ctx, bool &WasHit);

private:
  std::map<std::pair<const usr::USR *, uint64_t>, bool> Cache;
};

/// Interprets programs and executes analyzed loops under their plans.
class Executor {
public:
  Executor(ir::Program &Prog, usr::USRContext &Ctx)
      : Prog(Prog), Ctx(Ctx), Sym(Ctx.symCtx()) {}

  /// Plain sequential interpretation of a statement list.
  void runStmts(const std::vector<const ir::Stmt *> &Stmts, Memory &M,
                sym::Bindings &B);

  /// Sequential execution of one loop (the timing baseline).
  void runSequential(const ir::DoLoop &Loop, Memory &M, sym::Bindings &B);

  /// Hybrid execution under a plan: predicate cascades, technique
  /// selection, exact-test / TLS fallback, parallel interpretation.
  ExecStats runPlanned(const analysis::LoopPlan &Plan, Memory &M,
                       sym::Bindings &B, ThreadPool &Pool,
                       HoistCache *Hoist = nullptr);

  /// CIV-COMP: precomputes civ@pre / join pseudo-arrays into \p B by a
  /// sequential slice of the loop (only control flow and CIV updates).
  void runCivSlice(const ir::DoLoop &Loop, const summary::CivPlan &Plan,
                   Memory &M, sym::Bindings &B);

  /// BOUNDS-COMP: evaluates the min/max touched offsets of \p S in
  /// parallel (Fig. 7a). Returns false on evaluation failure.
  bool computeBounds(const usr::USR *S, sym::Bindings &B, ThreadPool &Pool,
                     int64_t &Lo, int64_t &Hi);

  /// Switches cascade evaluation between the compiled bytecode evaluator
  /// (default) and the reference tree interpreter. The interpreter path is
  /// kept for A/B overhead measurement (bench/rtov_overhead.cpp) and as
  /// the cross-check oracle in tests.
  void setUseCompiledPredicates(bool Use) { UseCompiledPreds = Use; }
  bool useCompiledPredicates() const { return UseCompiledPreds; }

  /// Number of distinct cascade-stage predicates compiled so far (each is
  /// compiled once and reused across plans and repeated executions).
  size_t numCompiledPreds() const { return CompileCache.size(); }

private:
  struct ExecState;
  void execStmt(const ir::Stmt *S, ExecState &St);
  bool runSpeculative(const analysis::LoopPlan &Plan, Memory &M,
                      sym::Bindings &B, ThreadPool &Pool, ExecStats &Stats);

  /// Evaluates a cascade cheapest-first (by compiled cost estimate) and
  /// returns the stage depth used (-1 static, -2 all failed). O(N)+
  /// stages run through the chunked parallel and-reduction.
  int runCascade(const analysis::TestCascade &C, sym::Bindings &B,
                 ThreadPool &Pool, ExecStats &Stats);
  /// Compile-once cache over interned cascade predicates.
  const pdag::CompiledPred *compiledFor(const pdag::Pred *P);

  ir::Program &Prog;
  usr::USRContext &Ctx;
  sym::Context &Sym;
  std::unordered_map<const pdag::Pred *, std::unique_ptr<pdag::CompiledPred>>
      CompileCache;
  bool UseCompiledPreds = true;
};

} // namespace rt
} // namespace halo

#endif // HALO_RT_EXECUTOR_H
