//===- rt/Executor.h - Runtime: conditional parallel execution -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate standing in for the paper's OpenMP runtime
/// (Sec. 5). The same mini-IR that was analyzed is interpreted here:
///
///  - sequentially (the baseline timing),
///  - or under a LoopPlan: the runtime *governor* precomputes CIV values
///    (CIV-COMP), evaluates the predicate cascades cheapest-first, decides
///    per-array strategies (shared / privatized / SLV / DLV / reduction
///    private copies / direct reduction), falls back to exact USR
///    evaluation (optionally memoized — HOIST-USR) or LRPD speculation,
///    and finally executes the loop across a thread pool with the chosen
///    techniques.
///
/// Interpretation cost applies equally to sequential and parallel
/// executions, so normalized timings (Figs. 10-13) retain their shape.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_RT_EXECUTOR_H
#define HALO_RT_EXECUTOR_H

#include "analysis/Analyzer.h"
#include "support/ThreadPool.h"
#include "sym/Eval.h"

#include <cstdint>
#include <map>
#include <vector>

namespace halo {
namespace rt {

/// Data-array storage (doubles); integer index arrays live in
/// sym::Bindings.
class Memory {
public:
  std::vector<double> &alloc(sym::SymbolId Id, size_t Elems) {
    auto &V = Arrays[Id];
    V.assign(Elems, 0.0);
    return V;
  }
  std::vector<double> *find(sym::SymbolId Id) {
    auto It = Arrays.find(Id);
    return It == Arrays.end() ? nullptr : &It->second;
  }
  const std::map<sym::SymbolId, std::vector<double>> &arrays() const {
    return Arrays;
  }
  std::map<sym::SymbolId, std::vector<double>> &arrays() { return Arrays; }

private:
  std::map<sym::SymbolId, std::vector<double>> Arrays;
};

/// How one loop execution was resolved (for RTov and table reporting).
struct ExecStats {
  double TotalSeconds = 0;
  double PredicateSeconds = 0; ///< Cascade evaluation time.
  double CivSliceSeconds = 0;  ///< CIV-COMP precomputation time.
  double ExactTestSeconds = 0; ///< Inspector (exact USR) time.
  double BoundsCompSeconds = 0;
  bool RanParallel = false;
  bool UsedExactTest = false;
  bool UsedTLS = false;
  bool TLSSucceeded = false;
  int CascadeDepthUsed = -1; ///< Depth of the first successful stage.
  uint64_t PredicateLeafEvals = 0;
};

/// Memoization cache for hoisted exact tests (HOIST-USR, Sec. 5): the
/// emptiness result of an independence USR is reused across repeated
/// executions with identical relevant inputs.
class HoistCache {
public:
  /// Returns the cached emptiness answer, or evaluates and caches it.
  /// Nullopt when evaluation itself fails.
  std::optional<bool> emptiness(const usr::USR *S, sym::Bindings &B,
                                const sym::Context &Ctx, bool &WasHit);

private:
  std::map<std::pair<const usr::USR *, uint64_t>, bool> Cache;
};

/// Interprets programs and executes analyzed loops under their plans.
class Executor {
public:
  Executor(ir::Program &Prog, usr::USRContext &Ctx)
      : Prog(Prog), Ctx(Ctx), Sym(Ctx.symCtx()) {}

  /// Plain sequential interpretation of a statement list.
  void runStmts(const std::vector<const ir::Stmt *> &Stmts, Memory &M,
                sym::Bindings &B);

  /// Sequential execution of one loop (the timing baseline).
  void runSequential(const ir::DoLoop &Loop, Memory &M, sym::Bindings &B);

  /// Hybrid execution under a plan: predicate cascades, technique
  /// selection, exact-test / TLS fallback, parallel interpretation.
  ExecStats runPlanned(const analysis::LoopPlan &Plan, Memory &M,
                       sym::Bindings &B, ThreadPool &Pool,
                       HoistCache *Hoist = nullptr);

  /// CIV-COMP: precomputes civ@pre / join pseudo-arrays into \p B by a
  /// sequential slice of the loop (only control flow and CIV updates).
  void runCivSlice(const ir::DoLoop &Loop, const summary::CivPlan &Plan,
                   Memory &M, sym::Bindings &B);

  /// BOUNDS-COMP: evaluates the min/max touched offsets of \p S in
  /// parallel (Fig. 7a). Returns false on evaluation failure.
  bool computeBounds(const usr::USR *S, sym::Bindings &B, ThreadPool &Pool,
                     int64_t &Lo, int64_t &Hi);

private:
  struct ExecState;
  void execStmt(const ir::Stmt *S, ExecState &St);
  bool runSpeculative(const analysis::LoopPlan &Plan, Memory &M,
                      sym::Bindings &B, ThreadPool &Pool, ExecStats &Stats);

  ir::Program &Prog;
  usr::USRContext &Ctx;
  sym::Context &Sym;
};

} // namespace rt
} // namespace halo

#endif // HALO_RT_EXECUTOR_H
