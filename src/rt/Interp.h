//===- rt/Interp.h - The interpreter substrate -----------------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-IR interpreter the runtime executes loops on — split from the
/// governor (rt/Executor.h) so cascade evaluation, technique decisions and
/// fallback policy live in one layer and plain statement interpretation in
/// another. The governor composes these pieces: it prepares an ExecState
/// (privatization redirects, reduction buffers, LRPD shadows), then drives
/// interpStmt over the loop body, sequentially or from pool workers.
///
/// Interpretation cost applies equally to sequential and parallel
/// executions, so normalized timings (Figs. 10-13) retain their shape.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_RT_INTERP_H
#define HALO_RT_INTERP_H

#include "ir/Program.h"
#include "rt/Memory.h"
#include "summary/Summary.h"
#include "support/ThreadPool.h"
#include "sym/Eval.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

namespace halo {
namespace usr {
class USR;
}
namespace rt {

/// LRPD shadow state for one array (Sec. 5 / [25]): last-writer iteration
/// per element plus a global conflict flag.
struct Shadow {
  std::unique_ptr<std::atomic<int64_t>[]> Writer; // -1 none.
  std::unique_ptr<std::atomic<int64_t>[]> Reader; // -1 none (exposed).
  size_t Size = 0;

  explicit Shadow(size_t N) : Size(N) {
    Writer.reset(new std::atomic<int64_t>[N]);
    Reader.reset(new std::atomic<int64_t>[N]);
    for (size_t I = 0; I < N; ++I) {
      Writer[I].store(-1, std::memory_order_relaxed);
      Reader[I].store(-1, std::memory_order_relaxed);
    }
  }
};

/// Mutable state of one interpretation: memory, scalar bindings, the
/// call-site alias chain, and the per-array strategy maps the governor
/// installs (privatization redirects, reduction buffers, SLV masks, DLV
/// tracking, LRPD shadows).
struct ExecState {
  Memory &M;
  sym::Bindings B;

  /// Call-site array aliasing: formal -> (array, offset) at call time.
  std::map<sym::SymbolId, std::pair<sym::SymbolId, int64_t>> Alias;

  /// Privatization redirects: base array -> thread-private buffer.
  std::map<sym::SymbolId, std::vector<double> *> Redirect;
  /// Reduction private buffers (additive, zero-initialized).
  std::map<sym::SymbolId, std::vector<double> *> RedBuf;
  /// Per-element write masks for SLV arrays.
  std::map<sym::SymbolId, std::vector<uint8_t> *> WrittenMask;
  /// DLV tracking: last writing iteration + value per element.
  struct DlvBuf {
    std::vector<int64_t> LastIter;
    std::vector<double> Val;
  };
  std::map<sym::SymbolId, DlvBuf *> Dlv;

  /// LRPD shadows (speculative runs only).
  std::map<sym::SymbolId, Shadow *> Shadows;
  std::atomic<bool> *Conflict = nullptr;

  int64_t CurrentIter = 0;

  explicit ExecState(Memory &M, const sym::Bindings &Bind) : M(M), B(Bind) {}

  /// Resolves a (possibly formal) array + offset through the alias chain.
  std::pair<sym::SymbolId, int64_t> resolve(sym::SymbolId Arr,
                                            int64_t Off) const;
  double load(sym::SymbolId Arr, int64_t Off);
  void store(sym::SymbolId Arr, int64_t Off, double Val, bool IsReduction);
};

/// Interprets one statement (recursively) under \p St.
void interpStmt(const ir::Stmt *S, ExecState &St);

/// Plain sequential interpretation of a statement list; propagates scalar
/// updates (CIV values etc.) back into \p B.
void interpStmts(const std::vector<const ir::Stmt *> &Stmts, Memory &M,
                 sym::Bindings &B);

/// Sequential execution of one loop (the timing baseline).
void interpSequential(const ir::DoLoop &Loop, Memory &M, sym::Bindings &B);

/// CIV-COMP: precomputes civ@pre / join pseudo-arrays into \p B by a
/// sequential slice of the loop (only control flow and CIV updates).
void interpCivSlice(const ir::DoLoop &Loop, const summary::CivPlan &Plan,
                    Memory &M, sym::Bindings &B);

/// BOUNDS-COMP: evaluates the min/max touched offsets of \p S in
/// parallel (Fig. 7a). Returns false on evaluation failure.
bool interpBounds(const usr::USR *S, sym::Bindings &B, ThreadPool &Pool,
                  int64_t &Lo, int64_t &Hi);

} // namespace rt
} // namespace halo

#endif // HALO_RT_INTERP_H
