//===- analysis/Analyzer.cpp - Hybrid loop analysis driver ----------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "pdag/PredEval.h"
#include "usr/USRCompile.h"
#include "usr/USREval.h"
#include "usr/USRTransform.h"

#include <algorithm>
#include <sstream>

using namespace halo;
using namespace halo::analysis;
using summary::AccessTriple;
using usr::USR;

//===----------------------------------------------------------------------===//
// LoopPlan reporting
//===----------------------------------------------------------------------===//

int LoopPlan::maxTestDepth() const {
  int D = -1;
  auto Consider = [&D](const TestCascade &C) {
    if (!C.StaticallyTrue && !C.Stages.empty())
      D = std::max(D, C.Stages.front().Depth);
  };
  for (const ArrayPlan &A : Arrays) {
    Consider(A.Flow);
    if (!A.Output.StaticallyTrue && !A.Priv.StaticallyTrue) {
      Consider(A.Output);
      Consider(A.Priv);
    }
    if (A.HasReduction) {
      Consider(A.ExtRedFlow);
    }
  }
  return D;
}

std::string LoopPlan::classString() const {
  switch (Class) {
  case LoopClass::StaticPar:
    return "STATIC-PAR";
  case LoopClass::StaticSeq:
    return "STATIC-SEQ";
  case LoopClass::HoistUSR:
    return "HOIST-USR";
  case LoopClass::TLS:
    return "TLS";
  case LoopClass::Predicated:
    break;
  }
  // Runtime-assisted without predicate tests: name the enabling technique
  // the way the paper's tables do.
  std::string Prefix;
  if (Techniques.count(Technique::BoundsComp))
    Prefix = "BOUNDS-COMP";
  // Compose the flow/output annotation, e.g. "F/OI O(1)/O(N)", from the
  // reporting fields computed during analysis.
  bool NeedF = ReportNeedsFlow, NeedO = ReportNeedsOut;
  int FD = ReportFlowDepth, OD = ReportOutDepth;
  auto Ord = [](int D) {
    return D <= 0 ? std::string("O(1)")
                  : (D == 1 ? std::string("O(N)")
                            : "O(N^" + std::to_string(D) + ")");
  };
  std::ostringstream OS;
  if (!Prefix.empty())
    OS << Prefix;
  auto Sep = [&OS, &Prefix]() {
    if (!Prefix.empty())
      OS << " ";
  };
  if (NeedF && NeedO) {
    Sep();
    OS << "F/OI " << Ord(FD) << "/" << Ord(OD);
  } else if (NeedF) {
    Sep();
    OS << "FI " << Ord(FD);
  } else if (NeedO) {
    Sep();
    OS << "OI " << Ord(OD);
  } else if (Prefix.empty()) {
    // Runtime-assisted for another reason: CIV precomputation.
    OS << (Techniques.count(Technique::CivAgg) ? "CIV-COMP" : "RT");
  }
  return OS.str();
}

std::string LoopPlan::techniqueString() const {
  static const std::pair<Technique, const char *> Names[] = {
      {Technique::Priv, "PRIV"},         {Technique::SLV, "SLV"},
      {Technique::DLV, "DLV"},           {Technique::SRed, "SRED"},
      {Technique::RRed, "RRED"},         {Technique::ExtRed, "EXT-RRED"},
      {Technique::BoundsComp, "BOUNDS-COMP"},
      {Technique::CivAgg, "CIVagg"},     {Technique::Mon, "MON"},
      {Technique::UMEG, "UMEG"},
  };
  std::string Out;
  for (const auto &KV : Names)
    if (Techniques.count(KV.first)) {
      if (!Out.empty())
        Out += ",";
      Out += KV.second;
    }
  return Out;
}

//===----------------------------------------------------------------------===//
// HybridAnalyzer
//===----------------------------------------------------------------------===//

HybridAnalyzer::HybridAnalyzer(usr::USRContext &Ctx, ir::Program &Prog,
                               AnalyzerOptions Opts)
    : Ctx(Ctx), P(Ctx.predCtx()), Sym(Ctx.symCtx()), Prog(Prog),
      Opts(Opts) {}

TestCascade HybridAnalyzer::makeCascade(const pdag::Pred *Pr) const {
  TestCascade C;
  const pdag::Pred *Full =
      Opts.CascadeSeparation ? pdag::simplify(P, Pr) : Pr;
  if (Full->isTrue()) {
    C.StaticallyTrue = true;
    return C;
  }
  if (Full->isFalse())
    return C;
  if (!Opts.RuntimeTests) // Static-only baseline: no dynamic tests.
    return C;
  if (Opts.CascadeSeparation) {
    C.Stages = pdag::buildCascade(P, Full);
  } else {
    C.Stages = {pdag::CascadeStage{Full, Full->loopDepth()}};
  }
  // Complexity budget (Sec. 3.6): drop stages beyond the configured loop
  // depth; an empty cascade routes to the exact-test / TLS fallback.
  // Also drop *vacuous* stages that only cover the empty-iteration-space
  // case (conjoining with `lo <= hi` folds them to false): they would
  // misreport the complexity of the first useful test.
  C.Stages.erase(
      std::remove_if(C.Stages.begin(), C.Stages.end(),
                     [this](const pdag::CascadeStage &S) {
                       if (S.Depth > Opts.MaxPredDepth)
                         return true;
                       if (CurLo && CurHi &&
                           P.and2(S.P, P.le(CurLo, CurHi))->isFalse())
                         return true;
                       return false;
                     }),
      C.Stages.end());
  return C;
}

TestCascade HybridAnalyzer::factorToCascade(factor::Factorizer &F,
                                            const USR *S) {
  const USR *In = Opts.UMEGReshape ? usr::reshapeUMEG(Ctx, S) : S;
  return makeCascade(F.factor(In));
}

LoopPlan HybridAnalyzer::analyze(const ir::DoLoop &Loop) {
  LoopPlan Plan;
  Plan.Loop = &Loop;
  Plan.Hoistable = Opts.HoistableContext;
  Plan.RuntimeTestsEnabled = Opts.RuntimeTests;
  CurLo = Loop.getLo();
  CurHi = Loop.getHi();

  summary::SummaryBuilder Builder(Ctx, Prog);
  summary::RegionSummary Iter =
      Builder.summarizeIteration(Loop, Plan.Civ);
  if (!Plan.Civ.empty())
    Plan.Techniques.insert(Technique::CivAgg);

  summary::LoopSpace Space{Loop.getVar(), Loop.getLo(), Loop.getHi()};

  // Union of array symbols appearing in either map.
  std::vector<sym::SymbolId> ArrayIds;
  for (const auto &KV : Iter.Arrays)
    ArrayIds.push_back(KV.first);
  for (const auto &KV : Iter.Reductions)
    if (!Iter.Arrays.count(KV.first))
      ArrayIds.push_back(KV.first);

  bool AnyRuntime = false;
  bool AnyUnproven = false; // Needs exact test / TLS.
  bool DemonstratedDep = false;

  factor::FactorStats Accumulated;

  for (sym::SymbolId Id : ArrayIds) {
    ArrayPlan AP;
    AP.Array = Id;

    AccessTriple T;
    if (auto It = Iter.Arrays.find(Id); It != Iter.Arrays.end())
      T = It->second;
    const USR *RO = T.RO ? T.RO : Ctx.empty();
    const USR *WF = T.WF ? T.WF : Ctx.empty();
    const USR *RW = T.RW ? T.RW : Ctx.empty();
    const USR *RED = Ctx.empty();
    if (auto It = Iter.Reductions.find(Id); It != Iter.Reductions.end())
      RED = It->second;

    factor::Factorizer F(Ctx, Opts.Factor);
    if (const ir::ArrayDecl *D = findDeclInProgram(Id))
      if (D->Size)
        F.setArraySize(D->Size);

    const USR *Writes = Ctx.union2(WF, RW);
    if (Writes->isEmptySet() && RED->isEmptySet()) {
      AP.ReadOnly = true;
      AP.Flow.StaticallyTrue = true;
      AP.Output.StaticallyTrue = true;
      Plan.Arrays.push_back(AP);
      continue;
    }

    // Flow/anti independence (Eq. 3).
    AP.FlowUSR = summary::buildFlowIndepUSR(Ctx, Space, T);
    AP.Flow = factorToCascade(F, AP.FlowUSR);

    // Output independence (Eq. 2) over the non-reduction writes. When the
    // summary builder validated a CIV write envelope (Fig. 7b) and every
    // write of this array tracks that CIV's entry array, the envelope
    // interval [civ^pre(i)+MinRel, civ^pre(i+1)-1] replaces the gated
    // writes: a sound overestimate whose monotonicity is static.
    const USR *WritesForOutput = Writes;
    if (const summary::CivEnvelope *Env = Plan.Civ.findEnvelope(Id)) {
      const summary::CivDesc *D = Plan.Civ.findCiv(Env->Civ);
      bool AllTracked = D && Writes->dependsOn(D->EntryArr);
      if (AllTracked)
        for (const summary::CivJoin &J : Plan.Civ.Joins)
          if (Writes->dependsOn(J.JoinArr))
            AllTracked = false;
      if (AllTracked) {
        const sym::Expr *I = Sym.symRef(Loop.getVar());
        const sym::Expr *Lo = Sym.addConst(
            Sym.arrayRef(D->EntryArr, I), Env->MinRel);
        const sym::Expr *Hi = Sym.addConst(
            Sym.arrayRef(D->EntryArr, Sym.addConst(I, 1)), -1);
        WritesForOutput = Ctx.leaf(lmad::LMAD::makeStrided(
            Sym.intConst(1), Sym.sub(Hi, Lo), Lo));
      }
    }
    AP.OutputUSR = summary::buildOutputIndepUSR(Ctx, Space, WritesForOutput);
    AP.Output = factorToCascade(F, AP.OutputUSR);

    // Conditional privatization: exposed per-iteration reads empty.
    AP.Priv = factorToCascade(F, Ctx.union2(RO, RW));
    {
      summary::SLVPair SLV = summary::buildSLVPair(Ctx, Space, WF);
      AP.Slv = makeCascade(F.included(SLV.AllWrites, SLV.LastIter));
    }

    // Reductions (Sec. 4).
    if (!RED->isEmptySet()) {
      AP.HasReduction = true;
      const USR *Overlap =
          summary::buildReductionOverlapUSR(Ctx, Space, RED);
      AP.RRed = factorToCascade(F, Overlap);
      const USR *NonRed = Ctx.union2(Writes, RO);
      if (!NonRed->isEmptySet()) {
        // EXT-RRED: no ordinary access may touch a reduction location —
        // writes clobber the deferred accumulation, and reads observe
        // partial sums, so both are flow dependences on the reduction.
        // (Testing writes alone is unsound: the loop-nest fuzzer found a
        // case whose only dependence was a read of a reduced element.)
        const USR *AllRED = Ctx.recur(Space.Var, Space.Lo, Space.Hi, RED);
        const USR *AllNonRed =
            Ctx.recur(Space.Var, Space.Lo, Space.Hi, NonRed);
        AP.ExtRedUSR = Ctx.intersect(AllNonRed, AllRED);
        AP.ExtRedFlow = makeCascade(F.disjoint(AllNonRed, AllRED));
        Plan.Techniques.insert(Technique::ExtRed);
      }
      const ir::ArrayDecl *D = findDeclInProgram(Id);
      if (!D || !D->Size) {
        AP.NeedsBoundsComp = true;
        AP.BoundsUSR = usr::stripForBounds(
            Ctx, Ctx.recur(Space.Var, Space.Lo, Space.Hi,
                           Ctx.union2(RED, Writes)));
        Plan.Techniques.insert(Technique::BoundsComp);
      }
      // RRED when a non-trivial injectivity test was extracted (one that
      // inspects runtime array values, like `AND_i B(i) < B(i+1)` of
      // Sec. 4); otherwise the reduction is statically recognized (SRED:
      // unconditional private copies).
      bool NonTrivialTest = false;
      for (const pdag::CascadeStage &St : AP.RRed.Stages)
        for (sym::SymbolId S : St.P->freeSymbols())
          if (Sym.symbolInfo(S).IsArray)
            NonTrivialTest = true;
      Plan.Techniques.insert(NonTrivialTest ? Technique::RRed
                                            : Technique::SRed);
      AP.RRedDeployed = NonTrivialTest;
    }

    // Bookkeeping for the classification. With a probe dataset, a cascade
    // "resolves" at the depth of the first stage that actually succeeds —
    // the notion the paper's tables report; without a probe, at the first
    // stage's depth.
    auto ResolveDepth = [this](const TestCascade &C) -> int {
      if (C.StaticallyTrue)
        return -1;
      if (C.Stages.empty())
        return -2;
      if (!Opts.Probe)
        return C.Stages.front().Depth;
      sym::Bindings B = *Opts.Probe;
      for (const pdag::CascadeStage &St : C.Stages) {
        auto V = pdag::tryEvalPred(St.P, B);
        if (V && *V)
          return St.Depth;
      }
      return -2;
    };
    auto ExactEmptyOnProbe = [this](const USR *S) -> std::optional<bool> {
      if (!S || !Opts.Probe)
        return std::nullopt;
      sym::Bindings B = *Opts.Probe;
      // Classification only needs the emptiness answer, and probe
      // datasets can be large: run the compiled interval-run engine
      // (parity-tested against evalUSREmpty) instead of materializing
      // the probe's point sets.
      return usr::CompiledUSR::compile(S, Sym)->evalEmpty(B);
    };

    // Flow side.
    int FD = ResolveDepth(AP.Flow);
    if (FD == -2) {
      auto Exact = ExactEmptyOnProbe(AP.FlowUSR);
      if (Exact && !*Exact)
        DemonstratedDep = true;
      else
        AnyUnproven = true; // Needs the exact test (or TLS) at runtime.
    } else if (FD >= 0) {
      Plan.ReportNeedsFlow = true;
      Plan.ReportFlowDepth = std::max(Plan.ReportFlowDepth, FD);
      AnyRuntime = true;
    }

    // Output side: prefer the output-independence cascade; fall back to
    // conditional privatization (+ last value), then the exact test.
    int OD = ResolveDepth(AP.Output);
    if (OD == -2) {
      int PD = ResolveDepth(AP.Priv);
      if (PD != -2) {
        Plan.Techniques.insert(Technique::Priv);
        int SD = ResolveDepth(AP.Slv);
        Plan.Techniques.insert(SD != -2 ? Technique::SLV : Technique::DLV);
        int Rep = std::max(PD, SD == -2 ? -1 : SD);
        if (Rep >= 0) {
          Plan.ReportNeedsOut = true;
          Plan.ReportOutDepth = std::max(Plan.ReportOutDepth, Rep);
        }
        AnyRuntime |= (PD >= 0 || SD >= 0);
      } else {
        auto Exact = ExactEmptyOnProbe(AP.OutputUSR);
        if (Exact && !*Exact)
          DemonstratedDep = true;
        else
          AnyUnproven = true;
      }
    } else if (OD >= 0) {
      Plan.ReportNeedsOut = true;
      Plan.ReportOutDepth = std::max(Plan.ReportOutDepth, OD);
      AnyRuntime = true;
    }

    // Reduction side.
    if (AP.HasReduction) {
      if (AP.ExtRedUSR) {
        int ED = ResolveDepth(AP.ExtRedFlow);
        if (ED == -2) {
          auto Exact = ExactEmptyOnProbe(AP.ExtRedUSR);
          if (Exact && !*Exact)
            DemonstratedDep = true;
          else
            AnyUnproven = true;
        } else if (ED >= 0) {
          Plan.ReportNeedsFlow = true;
          Plan.ReportFlowDepth = std::max(Plan.ReportFlowDepth, ED);
          AnyRuntime = true;
        }
      }
      AnyRuntime |= AP.NeedsBoundsComp;
      AnyRuntime |= AP.RRedDeployed;
    }

    const factor::FactorStats &S = F.stats();
    Accumulated.MonotonicityRule += S.MonotonicityRule;
    Accumulated.InvariantOverRule += S.InvariantOverRule;
    Accumulated.FourierMotzkinUses += S.FourierMotzkinUses;
    Accumulated.FillsArrayRule += S.FillsArrayRule;

    // UMEG attribution: reshaping changed the flow USR, or the summaries
    // themselves carry a union of (>= 2) mutually exclusive gates whose
    // shape the analysis preserved.
    if (Opts.UMEGReshape && AP.FlowUSR &&
        usr::reshapeUMEG(Ctx, AP.FlowUSR) != AP.FlowUSR)
      Plan.Techniques.insert(Technique::UMEG);
    for (const USR *Shape : {WF, RW})
      if (auto V = usr::viewUMEG(Ctx, Shape))
        if (V->Components.size() >= 2)
          Plan.Techniques.insert(Technique::UMEG);

    Plan.Arrays.push_back(AP);
  }

  LastStats = Accumulated;
  if (Accumulated.MonotonicityRule > 0)
    Plan.Techniques.insert(Technique::Mon);

  // CIV precomputation is itself a runtime phase (CIV-COMP).
  AnyRuntime |= !Plan.Civ.empty();

  if (DemonstratedDep)
    Plan.Class = LoopClass::StaticSeq;
  else if (AnyUnproven)
    Plan.Class = Opts.HoistableContext ? LoopClass::HoistUSR : LoopClass::TLS;
  else if (AnyRuntime)
    Plan.Class = Opts.RuntimeTests
                     ? LoopClass::Predicated
                     : LoopClass::StaticSeq; // Baseline gives up.
  else
    Plan.Class = LoopClass::StaticPar;
  return Plan;
}

const ir::ArrayDecl *HybridAnalyzer::findDeclInProgram(sym::SymbolId Id) {
  return Prog.findArrayDecl(Id);
}
