//===- analysis/Analyzer.h - Hybrid loop analysis driver -------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-loop pipeline of Sec. 5: summarize accesses, build the
/// independence equations, classify statically where possible, and extract
/// the cascade of runtime tests plus the parallelization techniques
/// (privatization, static/dynamic last value, static/runtime/extended
/// reduction, BOUNDS-COMP, CIV precomputation) that the runtime needs.
///
/// The resulting LoopPlan is both the machine-readable execution plan for
/// the rt module and the source of the classification strings reported in
/// the paper's Tables 1-3 (STATIC-PAR, STATIC-SEQ, FI/OI O(1)/O(N),
/// HOIST-USR, TLS, ...).
///
/// `AnalyzerOptions::RuntimeTests = false` yields the commercial-compiler
/// proxy baseline: only statically-proven loops parallelize (see DESIGN.md
/// substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_ANALYSIS_ANALYZER_H
#define HALO_ANALYSIS_ANALYZER_H

#include "factor/Factor.h"
#include "pdag/PredSimplify.h"
#include "summary/Independence.h"
#include "summary/Summary.h"

#include <set>
#include <string>

namespace halo {
namespace analysis {

/// Overall loop classification (column five of Tables 1-3).
enum class LoopClass {
  StaticPar,  ///< Proven independent at compile time.
  StaticSeq,  ///< Dependence demonstrated; run sequentially.
  Predicated, ///< Parallel under a runtime predicate cascade.
  HoistUSR,   ///< Needs exact USR evaluation, hoistable/memoizable.
  TLS,        ///< Falls back to speculative execution (LRPD).
};

/// Parallelization techniques (the abbreviations of Sec. 6).
enum class Technique {
  Priv,
  SLV,
  DLV,
  SRed,
  RRed,
  ExtRed,
  BoundsComp,
  CivAgg,
  Mon,
  UMEG,
};

/// One runtime test: a cascade of increasingly expensive sufficient
/// conditions. Empty stages with StaticallyTrue unset mean "no predicate
/// found" (fall back to exact test / TLS).
struct TestCascade {
  std::vector<pdag::CascadeStage> Stages;
  bool StaticallyTrue = false;
  /// Worst-case complexity of the first (cheapest) stage, -1 if none.
  int FirstDepth() const {
    return Stages.empty() ? -1 : Stages.front().Depth;
  }
};

/// Per-array analysis result and runtime strategy.
struct ArrayPlan {
  sym::SymbolId Array = 0;
  bool ReadOnly = false;

  /// Flow/anti independence (Eq. 3).
  TestCascade Flow;
  const usr::USR *FlowUSR = nullptr;

  /// Output independence (Eq. 2) of the non-reduction writes.
  TestCascade Output;
  const usr::USR *OutputUSR = nullptr;

  /// Conditional privatization: valid when the per-iteration exposed
  /// reads are empty (then output dependences are removed by private
  /// copies).
  TestCascade Priv;
  /// Static-last-value validity (all writes covered by iteration N's).
  TestCascade Slv;
  bool LiveOut = true;

  /// Reduction treatment (Sec. 4).
  bool HasReduction = false;
  /// Injectivity of the reduction subscripts: direct updates are safe.
  TestCascade RRed;
  /// True when a non-trivial runtime injectivity test was deployed.
  bool RRedDeployed = false;
  /// Flow independence between reduction and non-reduction accesses
  /// (EXT-RRED requirement).
  TestCascade ExtRedFlow;
  const usr::USR *ExtRedUSR = nullptr;
  /// Reduction array bounds unknown at compile time: evaluate at runtime.
  bool NeedsBoundsComp = false;
  const usr::USR *BoundsUSR = nullptr;
};

/// Complete result of analyzing one loop.
struct LoopPlan {
  const ir::DoLoop *Loop = nullptr;
  LoopClass Class = LoopClass::StaticPar;
  std::set<Technique> Techniques;
  std::vector<ArrayPlan> Arrays;
  summary::CivPlan Civ;
  /// True when exact-test fallback may be hoisted/memoized across
  /// repeated executions of the loop (set from the benchmark context).
  bool Hoistable = false;
  /// Whether dynamic validation (predicates, exact tests, TLS) may be
  /// used at all; false for the static-only baseline.
  bool RuntimeTestsEnabled = true;
  /// Reporting depths for the classification string (-1 = no runtime
  /// flow/output test needed). When a probe dataset was supplied these
  /// reflect the first stage that actually succeeds — the same notion the
  /// paper's tables report.
  int ReportFlowDepth = -1;
  int ReportOutDepth = -1;
  bool ReportNeedsFlow = false;
  bool ReportNeedsOut = false;

  /// Max cascade depth over all arrays' first stages (0 = O(1) tests,
  /// 1 = O(N), ...), -1 when no runtime test is needed.
  int maxTestDepth() const;
  /// The paper's classification string, e.g. "STATIC-PAR", "FI O(1)",
  /// "F/OI O(1)/O(N)", "HOIST-USR", "TLS".
  std::string classString() const;
  /// Technique abbreviations, e.g. "PRIV,SLV,MON".
  std::string techniqueString() const;
};

struct AnalyzerOptions {
  factor::FactorOptions Factor;
  /// Enable runtime predicates; off = static-only (ifort/xlf_r proxy).
  bool RuntimeTests = true;
  /// Upper bound on the complexity of generated runtime tests (Sec. 3.6:
  /// "the run-time complexity of the dynamic tests can be upper bounded
  /// during compilation"; the paper never needs more than O(N)). Stages
  /// beyond this loop depth are dropped; loops left without a usable
  /// predicate fall back to exact tests or TLS.
  int MaxPredDepth = 1;
  /// Apply the UMEG-preserving reshaping (Fig. 8b) before factorization.
  bool UMEGReshape = true;
  /// Apply invariant hoisting / cascade separation (Sec. 3.5).
  bool CascadeSeparation = true;
  /// Sample bindings used to demonstrate dependence when no sufficient
  /// predicate exists (distinguishes STATIC-SEQ from exact-test loops).
  const sym::Bindings *Probe = nullptr;
  /// Marks the loop's exact test as hoistable (amortized over repeated
  /// executions), switching the fallback from TLS to HOIST-USR.
  bool HoistableContext = false;
};

/// Runs the full hybrid analysis pipeline on one loop.
class HybridAnalyzer {
public:
  HybridAnalyzer(usr::USRContext &Ctx, ir::Program &Prog,
                 AnalyzerOptions Opts = AnalyzerOptions());

  LoopPlan analyze(const ir::DoLoop &Loop);

  const factor::FactorStats &lastFactorStats() const { return LastStats; }

private:
  TestCascade makeCascade(const pdag::Pred *P) const;
  TestCascade factorToCascade(factor::Factorizer &F, const usr::USR *S);
  const ir::ArrayDecl *findDeclInProgram(sym::SymbolId Id);

  usr::USRContext &Ctx;
  pdag::PredContext &P;
  sym::Context &Sym;
  ir::Program &Prog;
  AnalyzerOptions Opts;
  factor::FactorStats LastStats;
  /// Iteration bounds of the loop under analysis (for vacuous-stage
  /// filtering in makeCascade).
  const sym::Expr *CurLo = nullptr;
  const sym::Expr *CurHi = nullptr;
};

} // namespace analysis
} // namespace halo

#endif // HALO_ANALYSIS_ANALYZER_H
