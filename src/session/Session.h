//===- session/Session.h - Analyze-once / execute-many sessions -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// halo::session::Session owns the full analyze-once / execute-many
/// lifecycle for one program — the amortization argument behind HOIST-USR
/// (Sec. 5) turned into an API. A session holds, across executions:
///
///  - the LoopPlan cache: each ir::DoLoop is analyzed lazily on first use
///    and the plan reused for every later execution,
///  - the predicate compile cache (PredCompileCache) shared by all loops,
///  - per-TestCascade *pre-sorted* compiled cascades: stage vectors built
///    and cost-ordered once at plan time, never per execution,
///  - the HOIST-USR exact-test memo cache,
///  - the thread pool,
///  - a pool of rt::ExecContext (pooled CompiledPred / CompiledUSR
///    evaluation frames + their BindingsStamp rebind bookkeeping), leased
///    one per execution, so repeated executions skip frame allocation and
///    — when the bindings are unchanged — symbol re-binding entirely,
///    while *concurrent* executions never share mutable frames.
///
/// run() executes one loop under its cached plan; runBatch() executes it
/// M times back-to-back (the serve-heavy-repeated-traffic shape);
/// runPrepared() is the concurrency-safe execute-only entry point the
/// serving layer fans out over worker threads. See src/session/README.md
/// for the lifecycle walkthrough and the full concurrency contract.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SESSION_SESSION_H
#define HALO_SESSION_SESSION_H

#include "analysis/Analyzer.h"
#include "plan/Plan.h"
#include "rt/Executor.h"
#include "support/Sync.h"

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace halo {
namespace session {

/// Knobs of one session, fixed at construction.
struct SessionOptions {
  /// Worker threads of the session-owned pool.
  unsigned Threads = 4;
  /// Route cascade evaluation through compiled bytecode (default) or the
  /// reference tree interpreter (A/B measurement, parity oracle).
  bool UseCompiledPredicates = true;
  /// Route exact tests (HOIST-USR fallback) through the compiled
  /// interval-run USR engine (default) or the reference interpreter
  /// (A/B measurement, parity oracle).
  bool UseCompiledUSRs = true;
  /// Enable the block-vectorized evaluation tier (default): compiled
  /// cascade stages sweep their root loop pdag::ExprBlockWidth iterations
  /// per dispatch when the Auto governor selects it, and exact-test gate
  /// predicates batch recurrence sweeps. Off pins every compiled
  /// evaluation to the scalar bytecode tier (A/B measurement; results
  /// are bit-identical either way).
  bool UseBlockEval = true;
  /// Default analyzer options for plans prepared without explicit
  /// options. Per-loop knobs (probe bindings, hoistable context) go
  /// through prepare(Loop, Opts).
  analysis::AnalyzerOptions Analyzer;
};

/// One loop's analyze-once artifacts: the plan, its cascades compiled and
/// cost-ordered at plan time, the analysis-time factorization stats, and
/// an execution count for reporting. Immutable after prepare() except for
/// the two atomic counters, which is what lets any number of concurrent
/// runPrepared() calls execute against it.
struct PreparedLoop {
  analysis::LoopPlan Plan;
  rt::PlanCascades Cascades;
  factor::FactorStats FactorStats;
  /// The analyzer options the plan was produced under — folded into the
  /// plan key when the session serializes this loop (savePlans).
  analysis::AnalyzerOptions AOpts;
  /// Total executions against this plan (reporting).
  std::atomic<uint64_t> Executions{0};
  /// Executions running against this plan right now — the lifetime
  /// refcount behind the deferred-reclaim contract: a plan (current or
  /// retired) is never destroyed while this is nonzero.
  std::atomic<uint32_t> InFlight{0};
};

/// The analyze-once / execute-many driver for one program.
///
/// Concurrency contract (the serving layer, serve/Engine.h, builds on
/// exactly this — see src/session/README.md for the long form):
///
///  - **Analysis is exclusive.** prepare(), invalidate(), and run() /
///    runBatch() on an *unprepared* loop analyze, which interns new
///    expressions, predicates and USRs into the shared ir::Program /
///    sym::Context / pdag::PredContext / usr::USRContext. None of these
///    may overlap any other call into the session (or into any session
///    sharing those contexts).
///  - **Prepared execution is concurrent.** runPrepared() (and run() /
///    runBatch() on already-prepared loops, which route through the same
///    machinery) only *reads* the shared contexts and the PreparedLoop;
///    every mutation lands in caller-owned Memory/Bindings, in a leased
///    per-execution rt::ExecContext, or in internally-synchronized
///    session caches (HOIST-USR memo, compile caches, context pool).
///    Any number of threads may therefore call runPrepared()
///    concurrently — against the same loop or different ones — as long
///    as each brings its own Memory/Bindings and no analysis overlaps.
///
/// Plan lifetime: the reference returned by prepare() stays valid while
/// the loop's plan is current. A re-prepare (prepare(Loop, Opts)) or
/// invalidate() *retires* the old plan instead of destroying it: retired
/// plans stay alive while any execution is in flight against them and
/// are reclaimed lazily by the next analysis-exclusive call (prepare /
/// invalidate), i.e. exactly when the concurrency contract already
/// guarantees no execution is running. Callers holding a PreparedLoop
/// reference across a re-prepare must re-lookup before the *next*
/// exclusive phase after that.
class Session {
public:
  /// Builds a session serving \p Prog. \p Ctx must be the USR context the
  /// program was built against; both must outlive the session.
  Session(ir::Program &Prog, usr::USRContext &Ctx,
          SessionOptions Opts = SessionOptions());
  ~Session();

  /// Returns the cached plan for \p Loop, analyzing it (with the
  /// session's default analyzer options) on first use. See the class
  /// comment for the returned reference's lifetime. Throws
  /// std::invalid_argument when first-use analysis would register a
  /// second prepared loop with the same IR label (labels are the serving
  /// layer's loop ids; silent duplicates would mis-route requests), and
  /// support::ValidationError when the loop nest fails front-door
  /// structural validation (ir/Validate.h) — untrusted programs never
  /// reach the analyzer or the interpreter's asserts.
  const PreparedLoop &prepare(const ir::DoLoop &Loop);

  /// Analyzes \p Loop with explicit options and (re)caches the result.
  /// Always re-analyzes: call it once up front when a loop needs
  /// non-default options, then run() against the cache. The previous
  /// plan, if any, is retired (kept alive until no execution references
  /// it, reclaimed at a later exclusive phase — see the class comment),
  /// so references returned by earlier prepare() calls survive the
  /// re-prepare itself but must be re-looked-up afterwards. Duplicate
  /// labels throw std::invalid_argument as in prepare(Loop).
  const PreparedLoop &prepare(const ir::DoLoop &Loop,
                              const analysis::AnalyzerOptions &Opts);

  /// Drops the cached plan (e.g. after the program was mutated): the plan
  /// is retired, then reclaimed like a re-prepared one. Analysis-
  /// exclusive like prepare().
  void invalidate(const ir::DoLoop &Loop);

  /// True when a plan for \p Loop is already cached, i.e. runPrepared()
  /// would execute without analyzing. Safe concurrently with executions
  /// (never with analysis).
  bool isPrepared(const ir::DoLoop &Loop) const;

  /// Finds an already-prepared loop by its IR label (the serving layer's
  /// loop id). Returns nullptr when no prepared loop carries \p Label.
  /// Labels are unique among prepared loops: prepare() rejects
  /// duplicates, so the match is unambiguous.
  const ir::DoLoop *findPreparedLoop(std::string_view Label) const;

  /// Executes \p Loop under its cached plan (preparing it on first use):
  /// cascades pre-sorted at plan time, pooled frames, HOIST-USR cache.
  /// Because of the may-analyze first use, run() is analysis-exclusive;
  /// use runPrepared() from concurrent callers.
  rt::ExecStats run(const ir::DoLoop &Loop, rt::Memory &M, sym::Bindings &B);

  /// Executes \p Loop under an *already cached* plan, or returns nullopt
  /// when the loop was never prepared. Unlike run(), this never analyzes
  /// and therefore never mutates the shared IR/symbol/predicate/USR
  /// contexts — the execute side of the concurrency contract above. Safe
  /// for any number of concurrent callers (each with its own
  /// Memory/Bindings); the serving layer fans one hot loop out over its
  /// whole worker pool through this entry point.
  /// \p Cancel (optional) aborts the execution cooperatively: when the
  /// token is already fired on entry the call returns an aborted
  /// rt::ExecStats (Aborted == Cancelled/Expired) without touching the
  /// caller's Memory, the plan's Executions counter, or any session
  /// state; when it fires mid-run the governor unwinds at the next
  /// stage/exact-test/chunk boundary, leaving Memory either untouched or
  /// reflecting only fully-completed work.
  std::optional<rt::ExecStats>
  runPrepared(const ir::DoLoop &Loop, rt::Memory &M, sym::Bindings &B,
              const support::CancelToken *Cancel = nullptr);

  /// Executes \p Loop \p Repeats times back-to-back against the same
  /// memory and bindings; returns per-execution stats. Execution 2..N is
  /// the steady state the session exists for: zero per-execution
  /// re-setup.
  std::vector<rt::ExecStats> runBatch(const ir::DoLoop &Loop, rt::Memory &M,
                                      sym::Bindings &B, unsigned Repeats);

  /// runBatch() with a caller hook invoked before every element:
  /// BetweenElements(E, M, B) may rebind scalars/arrays (the per-request
  /// data refresh shape). Rebinding between elements bumps the bindings
  /// stamp, so element E+1 pays a full frame re-bind and stays exact;
  /// untouched bindings keep the zero-re-setup steady state.
  std::vector<rt::ExecStats>
  runBatch(const ir::DoLoop &Loop, rt::Memory &M, sym::Bindings &B,
           unsigned Repeats,
           const std::function<void(unsigned, rt::Memory &, sym::Bindings &)>
               &BetweenElements);

  /// Sequential interpretation (the timing baseline), through the same
  /// substrate the planned path uses.
  void runSequential(const ir::DoLoop &Loop, rt::Memory &M,
                     sym::Bindings &B);

  /// Plain sequential interpretation of a statement list.
  void runStmts(const std::vector<const ir::Stmt *> &Stmts, rt::Memory &M,
                sym::Bindings &B);

  /// BOUNDS-COMP against the session pool (Fig. 7a).
  bool computeBounds(const usr::USR *S, sym::Bindings &B, int64_t &Lo,
                     int64_t &Hi);

  /// Serializes every currently prepared plan to \p Out as a versioned
  /// .hplan stream (plan/Plan.h). Loops in deterministic (label) order;
  /// probe-analyzed plans are skipped. Analysis-exclusive (may compile
  /// through the shared caches). Returns the number of loops written.
  size_t savePlans(std::ostream &Out);

  /// Loads a .hplan stream and *stages* its verified plans: the next
  /// prepare(Loop) (default-options path) whose loop label matches a
  /// staged plan re-derives the plan key from its own loop and options
  /// and, when both the primary and the verify key match, adopts the
  /// staged plan instead of re-analyzing — the warm-start fast path.
  /// Any mismatch falls back to full analysis with a recorded Diag;
  /// loaded bytes are never trusted over re-derivation. Loading
  /// re-interns tables and compiles through the shared caches, so this
  /// is analysis-exclusive. Throws support::ValidationError on stream
  /// integrity anomalies (the session state is unchanged in that case
  /// except for interned-but-unreferenced table nodes).
  plan::LoadResult loadPlans(std::istream &In);

  /// Plans adopted from a loaded stream instead of analyzed (warm starts).
  size_t numPlansWarmStarted() const { return PlansWarmStarted; }
  /// Staged plans whose primary key matched a live loop but whose verify
  /// key did not — detected primary-hash collisions (never adopted).
  size_t numPlanKeyCollisions() const { return PlanKeyCollisions; }
  /// Staged plans not yet adopted by a prepare() call.
  size_t numStagedPlans() const { return StagedPlans.size(); }
  /// Structured diagnostics recorded by loadPlans and by rejected
  /// adoptions (stale keys, collisions, unresolvable join anchors).
  const std::vector<support::Diag> &planDiags() const { return PlanDiags; }

  /// The codegen-affecting session toggles, as folded into plan keys.
  plan::CodegenKey codegenKey() const {
    plan::CodegenKey CG;
    CG.UseCompiledPredicates = Opts.UseCompiledPredicates;
    CG.UseCompiledUSRs = Opts.UseCompiledUSRs;
    CG.UseBlockEval = Opts.UseBlockEval;
    return CG;
  }

  /// The session-owned worker pool (sized by SessionOptions::Threads).
  ThreadPool &pool() { return Pool; }
  /// The governor executing plans for this session.
  rt::Executor &executor() { return Exec; }
  /// The HOIST-USR exact-test memo cache (collision-verified, internally
  /// synchronized — shared by all concurrent executions).
  rt::HoistCache &hoistCache() { return Hoist; }
  /// The session-wide compiled-USR cache (warmed at plan time).
  rt::USRCompileCache &usrCompileCache() { return UsrCompile; }
  /// The options the session was constructed with.
  const SessionOptions &options() const { return Opts; }
  /// Number of loops with a cached (current, not retired) plan.
  size_t numPreparedLoops() const { return Plans.size(); }
  /// Number of distinct predicates lowered by the shared compile cache.
  size_t numCompiledPreds() const { return Compile.size(); }
  /// Number of independence USRs lowered to interval-run bytecode.
  size_t numCompiledUSRs() const { return UsrCompile.size(); }
  /// Number of pooled per-predicate evaluation frames, summed over every
  /// execution context the session has created.
  size_t numPooledFrames() const HALO_EXCLUDES(CtxMutex);
  /// Stack slots the exact-depth frame sizing saved across every pooled
  /// predicate and USR frame (vs. the old code-length-based bound),
  /// summed over every execution context.
  size_t pooledFrameSlotsSaved() const HALO_EXCLUDES(CtxMutex);
  /// Number of rt::ExecContexts created so far — its high-water mark is
  /// the session's peak execution concurrency.
  size_t numExecContexts() const HALO_EXCLUDES(CtxMutex);
  /// Retired (re-prepared / invalidated) plans not yet reclaimed.
  size_t numRetiredPlans() const { return Retired.size(); }

private:
  friend class ContextLease;

  PreparedLoop &prepareWith(const ir::DoLoop &Loop,
                            const analysis::AnalyzerOptions &Opts);
  /// Adoption fast path of prepare(Loop): returns the adopted plan when a
  /// staged plan matches \p Loop by label AND by both re-derived plan
  /// keys, nullptr otherwise (caller falls back to full analysis). A
  /// matching-label staged plan is consumed either way — stale entries
  /// don't get retried on every prepare.
  PreparedLoop *tryAdoptStaged(const ir::DoLoop &Loop);
  /// Frees retired plans no execution references anymore. Called from
  /// the analysis-exclusive entry points only.
  void sweepRetired();
  /// The shared execute path of run()/runPrepared(): leases a context,
  /// refcounts the plan, runs the governor. A pre-fired \p Cancel token
  /// short-circuits before any counter or lease is touched.
  rt::ExecStats execute(PreparedLoop &PL, rt::Memory &M, sym::Bindings &B,
                        const support::CancelToken *Cancel = nullptr);

  ir::Program &Prog;
  usr::USRContext &Ctx;
  SessionOptions Opts;
  ThreadPool Pool;
  rt::Executor Exec;
  rt::PredCompileCache Compile;
  rt::HoistCache Hoist;
  /// Compiled independence USRs (exact-test fallbacks), warmed at plan
  /// time for hoistable plans and shared across executions.
  rt::USRCompileCache UsrCompile;
  std::unordered_map<const ir::DoLoop *, std::unique_ptr<PreparedLoop>>
      Plans;
  /// Re-prepared / invalidated plans kept alive for in-flight executions
  /// and stale references; swept by the next exclusive phase.
  std::vector<std::unique_ptr<PreparedLoop>> Retired;

  /// Loaded-and-verified plans waiting for a matching live loop, keyed by
  /// loop label (the serving layer's loop id). Mutated only on the
  /// analysis-exclusive paths (loadPlans / prepare).
  std::unordered_map<std::string, plan::StagedLoop> StagedPlans;
  std::vector<support::Diag> PlanDiags;
  size_t PlansWarmStarted = 0;
  size_t PlanKeyCollisions = 0;

  /// Execution-context pool: Contexts owns every context ever created
  /// (so stats can walk them), Free lists the ones available for lease.
  /// CtxMutex is the only lock an execution takes inside the session —
  /// held for the two pointer swaps of checkout/return, never across the
  /// execution itself.
  mutable support::Mutex CtxMutex;
  std::vector<std::unique_ptr<rt::ExecContext>> Contexts
      HALO_GUARDED_BY(CtxMutex);
  std::vector<rt::ExecContext *> Free HALO_GUARDED_BY(CtxMutex);
};

} // namespace session
} // namespace halo

#endif // HALO_SESSION_SESSION_H
