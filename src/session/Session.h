//===- session/Session.h - Analyze-once / execute-many sessions -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// halo::session::Session owns the full analyze-once / execute-many
/// lifecycle for one program — the amortization argument behind HOIST-USR
/// (Sec. 5) turned into an API. A session holds, across executions:
///
///  - the LoopPlan cache: each ir::DoLoop is analyzed lazily on first use
///    and the plan reused for every later execution,
///  - the predicate compile cache (PredCompileCache) shared by all loops,
///  - per-TestCascade *pre-sorted* compiled cascades: stage vectors built
///    and cost-ordered once at plan time, never per execution,
///  - the HOIST-USR exact-test memo cache,
///  - the thread pool,
///  - pooled per-predicate CompiledPred frames, so repeated executions
///    skip frame allocation and, when the bindings are unchanged, symbol
///    re-binding of loop-invariant slots entirely.
///
/// run() executes one loop under its cached plan; runBatch() executes it
/// M times back-to-back (the serve-heavy-repeated-traffic shape). See
/// src/session/README.md for the lifecycle walkthrough.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SESSION_SESSION_H
#define HALO_SESSION_SESSION_H

#include "analysis/Analyzer.h"
#include "rt/Executor.h"

#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace halo {
namespace session {

/// Knobs of one session, fixed at construction.
struct SessionOptions {
  /// Worker threads of the session-owned pool.
  unsigned Threads = 4;
  /// Route cascade evaluation through compiled bytecode (default) or the
  /// reference tree interpreter (A/B measurement, parity oracle).
  bool UseCompiledPredicates = true;
  /// Route exact tests (HOIST-USR fallback) through the compiled
  /// interval-run USR engine (default) or the reference interpreter
  /// (A/B measurement, parity oracle).
  bool UseCompiledUSRs = true;
  /// Default analyzer options for plans prepared without explicit
  /// options. Per-loop knobs (probe bindings, hoistable context) go
  /// through prepare(Loop, Opts).
  analysis::AnalyzerOptions Analyzer;
};

/// One loop's analyze-once artifacts: the plan, its cascades compiled and
/// cost-ordered at plan time, the analysis-time factorization stats, and
/// an execution count for reporting.
struct PreparedLoop {
  analysis::LoopPlan Plan;
  rt::PlanCascades Cascades;
  factor::FactorStats FactorStats;
  uint64_t Executions = 0;
};

/// The analyze-once / execute-many driver for one program.
///
/// A session is *not* thread-safe: callers (in particular the serving
/// layer, serve/Engine.h) must serialize access to one session. The
/// concurrency contract that makes serialized-per-session concurrent
/// serving sound is the prepare/execute split:
///
///  - prepare() (and the first run() of an unprepared loop) *analyzes*,
///    which interns new expressions, predicates and USRs into the shared
///    ir::Program / sym::Context / pdag::PredContext / usr::USRContext;
///  - runPrepared() only *reads* those shared contexts — every mutation it
///    performs lands in caller-owned Memory/Bindings or in session-local
///    state (pooled frames, HOIST-USR memo, stats counters).
///
/// Therefore sessions sharing a program may execute prepared loops
/// concurrently (one thread per session), as long as no session analyzes
/// while another executes. See src/serve/README.md for how the engine
/// enforces exactly that.
class Session {
public:
  /// Builds a session serving \p Prog. \p Ctx must be the USR context the
  /// program was built against; both must outlive the session.
  Session(ir::Program &Prog, usr::USRContext &Ctx,
          SessionOptions Opts = SessionOptions());

  /// Returns the cached plan for \p Loop, analyzing it (with the
  /// session's default analyzer options) on first use. The returned
  /// reference stays valid until the loop's entry is replaced by a
  /// prepare(Loop, Opts) re-analysis or dropped by invalidate().
  const PreparedLoop &prepare(const ir::DoLoop &Loop);

  /// Analyzes \p Loop with explicit options and (re)caches the result.
  /// Always re-analyzes: call it once up front when a loop needs
  /// non-default options, then run() against the cache. Replacing the
  /// entry destroys the previous PreparedLoop — references returned by
  /// earlier prepare() calls for the same loop are invalidated.
  const PreparedLoop &prepare(const ir::DoLoop &Loop,
                              const analysis::AnalyzerOptions &Opts);

  /// Drops the cached plan (e.g. after the program was mutated),
  /// invalidating references previously returned by prepare() for it.
  void invalidate(const ir::DoLoop &Loop);

  /// True when a plan for \p Loop is already cached, i.e. runPrepared()
  /// would execute without analyzing.
  bool isPrepared(const ir::DoLoop &Loop) const;

  /// Finds an already-prepared loop by its IR label (the serving layer's
  /// loop id). Returns nullptr when no prepared loop carries \p Label;
  /// with duplicate labels the first prepared match wins.
  const ir::DoLoop *findPreparedLoop(std::string_view Label) const;

  /// Executes \p Loop under its cached plan (preparing it on first use):
  /// cascades pre-sorted at plan time, pooled frames, HOIST-USR cache.
  rt::ExecStats run(const ir::DoLoop &Loop, rt::Memory &M, sym::Bindings &B);

  /// Executes \p Loop under an *already cached* plan, or returns nullopt
  /// when the loop was never prepared. Unlike run(), this never analyzes
  /// and therefore never mutates the shared IR/symbol/predicate/USR
  /// contexts — the execute side of the concurrency contract above, used
  /// by the serving layer after warm-up.
  std::optional<rt::ExecStats> runPrepared(const ir::DoLoop &Loop,
                                           rt::Memory &M, sym::Bindings &B);

  /// Executes \p Loop \p Repeats times back-to-back against the same
  /// memory and bindings; returns per-execution stats. Execution 2..N is
  /// the steady state the session exists for: zero per-execution
  /// re-setup.
  std::vector<rt::ExecStats> runBatch(const ir::DoLoop &Loop, rt::Memory &M,
                                      sym::Bindings &B, unsigned Repeats);

  /// runBatch() with a caller hook invoked before every element:
  /// BetweenElements(E, M, B) may rebind scalars/arrays (the per-request
  /// data refresh shape). Rebinding between elements bumps the bindings
  /// stamp, so element E+1 pays a full frame re-bind and stays exact;
  /// untouched bindings keep the zero-re-setup steady state.
  std::vector<rt::ExecStats>
  runBatch(const ir::DoLoop &Loop, rt::Memory &M, sym::Bindings &B,
           unsigned Repeats,
           const std::function<void(unsigned, rt::Memory &, sym::Bindings &)>
               &BetweenElements);

  /// Sequential interpretation (the timing baseline), through the same
  /// substrate the planned path uses.
  void runSequential(const ir::DoLoop &Loop, rt::Memory &M,
                     sym::Bindings &B);

  /// Plain sequential interpretation of a statement list.
  void runStmts(const std::vector<const ir::Stmt *> &Stmts, rt::Memory &M,
                sym::Bindings &B);

  /// BOUNDS-COMP against the session pool (Fig. 7a).
  bool computeBounds(const usr::USR *S, sym::Bindings &B, int64_t &Lo,
                     int64_t &Hi);

  /// The session-owned worker pool (sized by SessionOptions::Threads).
  ThreadPool &pool() { return Pool; }
  /// The governor executing plans for this session.
  rt::Executor &executor() { return Exec; }
  /// The HOIST-USR exact-test memo cache (collision-verified).
  rt::HoistCache &hoistCache() { return Hoist; }
  /// The session-wide compiled-USR cache (warmed at plan time).
  rt::USRCompileCache &usrCompileCache() { return UsrCompile; }
  /// The options the session was constructed with.
  const SessionOptions &options() const { return Opts; }
  /// Number of loops with a cached plan.
  size_t numPreparedLoops() const { return Plans.size(); }
  /// Number of distinct predicates lowered by the shared compile cache.
  size_t numCompiledPreds() const { return Compile.size(); }
  /// Number of independence USRs lowered to interval-run bytecode.
  size_t numCompiledUSRs() const { return UsrCompile.size(); }
  /// Number of pooled per-predicate evaluation frames.
  size_t numPooledFrames() const { return Frames.size(); }

private:
  PreparedLoop &prepareWith(const ir::DoLoop &Loop,
                            const analysis::AnalyzerOptions &Opts);

  ir::Program &Prog;
  usr::USRContext &Ctx;
  SessionOptions Opts;
  ThreadPool Pool;
  rt::Executor Exec;
  rt::PredCompileCache Compile;
  rt::HoistCache Hoist;
  rt::FramePool Frames;
  /// Compiled independence USRs (exact-test fallbacks), warmed at plan
  /// time for hoistable plans and shared across executions.
  rt::USRCompileCache UsrCompile;
  std::unordered_map<const ir::DoLoop *, std::unique_ptr<PreparedLoop>>
      Plans;
};

} // namespace session
} // namespace halo

#endif // HALO_SESSION_SESSION_H
