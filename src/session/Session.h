//===- session/Session.h - Analyze-once / execute-many sessions -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// halo::session::Session owns the full analyze-once / execute-many
/// lifecycle for one program — the amortization argument behind HOIST-USR
/// (Sec. 5) turned into an API. A session holds, across executions:
///
///  - the LoopPlan cache: each ir::DoLoop is analyzed lazily on first use
///    and the plan reused for every later execution,
///  - the predicate compile cache (PredCompileCache) shared by all loops,
///  - per-TestCascade *pre-sorted* compiled cascades: stage vectors built
///    and cost-ordered once at plan time, never per execution,
///  - the HOIST-USR exact-test memo cache,
///  - the thread pool,
///  - pooled per-predicate CompiledPred frames, so repeated executions
///    skip frame allocation and, when the bindings are unchanged, symbol
///    re-binding of loop-invariant slots entirely.
///
/// run() executes one loop under its cached plan; runBatch() executes it
/// M times back-to-back (the serve-heavy-repeated-traffic shape). See
/// src/session/README.md for the lifecycle walkthrough.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SESSION_SESSION_H
#define HALO_SESSION_SESSION_H

#include "analysis/Analyzer.h"
#include "rt/Executor.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace halo {
namespace session {

struct SessionOptions {
  /// Worker threads of the session-owned pool.
  unsigned Threads = 4;
  /// Route cascade evaluation through compiled bytecode (default) or the
  /// reference tree interpreter (A/B measurement, parity oracle).
  bool UseCompiledPredicates = true;
  /// Route exact tests (HOIST-USR fallback) through the compiled
  /// interval-run USR engine (default) or the reference interpreter
  /// (A/B measurement, parity oracle).
  bool UseCompiledUSRs = true;
  /// Default analyzer options for plans prepared without explicit
  /// options. Per-loop knobs (probe bindings, hoistable context) go
  /// through prepare(Loop, Opts).
  analysis::AnalyzerOptions Analyzer;
};

/// One loop's analyze-once artifacts: the plan, its cascades compiled and
/// cost-ordered at plan time, the analysis-time factorization stats, and
/// an execution count for reporting.
struct PreparedLoop {
  analysis::LoopPlan Plan;
  rt::PlanCascades Cascades;
  factor::FactorStats FactorStats;
  uint64_t Executions = 0;
};

/// The analyze-once / execute-many driver for one program.
class Session {
public:
  Session(ir::Program &Prog, usr::USRContext &Ctx,
          SessionOptions Opts = SessionOptions());

  /// Returns the cached plan for \p Loop, analyzing it (with the
  /// session's default analyzer options) on first use. The returned
  /// reference stays valid until the loop's entry is replaced by a
  /// prepare(Loop, Opts) re-analysis or dropped by invalidate().
  const PreparedLoop &prepare(const ir::DoLoop &Loop);

  /// Analyzes \p Loop with explicit options and (re)caches the result.
  /// Always re-analyzes: call it once up front when a loop needs
  /// non-default options, then run() against the cache. Replacing the
  /// entry destroys the previous PreparedLoop — references returned by
  /// earlier prepare() calls for the same loop are invalidated.
  const PreparedLoop &prepare(const ir::DoLoop &Loop,
                              const analysis::AnalyzerOptions &Opts);

  /// Drops the cached plan (e.g. after the program was mutated),
  /// invalidating references previously returned by prepare() for it.
  void invalidate(const ir::DoLoop &Loop);

  /// Executes \p Loop under its cached plan (preparing it on first use):
  /// cascades pre-sorted at plan time, pooled frames, HOIST-USR cache.
  rt::ExecStats run(const ir::DoLoop &Loop, rt::Memory &M, sym::Bindings &B);

  /// Executes \p Loop \p Repeats times back-to-back against the same
  /// memory and bindings; returns per-execution stats. Execution 2..N is
  /// the steady state the session exists for: zero per-execution
  /// re-setup.
  std::vector<rt::ExecStats> runBatch(const ir::DoLoop &Loop, rt::Memory &M,
                                      sym::Bindings &B, unsigned Repeats);

  /// Sequential interpretation (the timing baseline), through the same
  /// substrate the planned path uses.
  void runSequential(const ir::DoLoop &Loop, rt::Memory &M,
                     sym::Bindings &B);

  /// Plain sequential interpretation of a statement list.
  void runStmts(const std::vector<const ir::Stmt *> &Stmts, rt::Memory &M,
                sym::Bindings &B);

  /// BOUNDS-COMP against the session pool (Fig. 7a).
  bool computeBounds(const usr::USR *S, sym::Bindings &B, int64_t &Lo,
                     int64_t &Hi);

  ThreadPool &pool() { return Pool; }
  rt::Executor &executor() { return Exec; }
  rt::HoistCache &hoistCache() { return Hoist; }
  rt::USRCompileCache &usrCompileCache() { return UsrCompile; }
  const SessionOptions &options() const { return Opts; }
  size_t numPreparedLoops() const { return Plans.size(); }
  size_t numCompiledPreds() const { return Compile.size(); }
  size_t numCompiledUSRs() const { return UsrCompile.size(); }
  size_t numPooledFrames() const { return Frames.size(); }

private:
  PreparedLoop &prepareWith(const ir::DoLoop &Loop,
                            const analysis::AnalyzerOptions &Opts);

  ir::Program &Prog;
  usr::USRContext &Ctx;
  SessionOptions Opts;
  ThreadPool Pool;
  rt::Executor Exec;
  rt::PredCompileCache Compile;
  rt::HoistCache Hoist;
  rt::FramePool Frames;
  /// Compiled independence USRs (exact-test fallbacks), warmed at plan
  /// time for hoistable plans and shared across executions.
  rt::USRCompileCache UsrCompile;
  std::unordered_map<const ir::DoLoop *, std::unique_ptr<PreparedLoop>>
      Plans;
};

} // namespace session
} // namespace halo

#endif // HALO_SESSION_SESSION_H
