//===- session/Session.cpp - Analyze-once / execute-many sessions ---------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "session/Session.h"

using namespace halo;
using namespace halo::session;

Session::Session(ir::Program &Prog, usr::USRContext &Ctx, SessionOptions O)
    : Prog(Prog), Ctx(Ctx), Opts(std::move(O)), Pool(Opts.Threads),
      Exec(Prog, Ctx), Compile(Ctx.symCtx()),
      UsrCompile(Ctx.symCtx(), Compile) {
  Exec.setUseCompiledPredicates(Opts.UseCompiledPredicates);
  Exec.setUseCompiledUSRs(Opts.UseCompiledUSRs);
}

PreparedLoop &Session::prepareWith(const ir::DoLoop &Loop,
                                   const analysis::AnalyzerOptions &AOpts) {
  auto PL = std::make_unique<PreparedLoop>();
  analysis::HybridAnalyzer A(Ctx, Prog, AOpts);
  PL->Plan = A.analyze(Loop);
  PL->FactorStats = A.lastFactorStats();
  // Built against the plan in its final (heap) location: cascade stages
  // keep pointers into Plan.Arrays.
  PL->Cascades = rt::PlanCascades::build(PL->Plan, Compile);
  // Warm the compiled-USR cache at plan time: every independence USR the
  // HOIST-USR fallback can reach is lowered once here, so no execution
  // ever pays USR compilation.
  if (Opts.UseCompiledUSRs && PL->Plan.Hoistable)
    for (const analysis::ArrayPlan &AP : PL->Plan.Arrays)
      for (const usr::USR *S :
           {AP.FlowUSR, AP.OutputUSR, AP.ExtRedUSR})
        if (S)
          (void)UsrCompile.get(S);
  auto &Slot = Plans[&Loop];
  Slot = std::move(PL);
  return *Slot;
}

const PreparedLoop &Session::prepare(const ir::DoLoop &Loop) {
  auto It = Plans.find(&Loop);
  if (It != Plans.end())
    return *It->second;
  return prepareWith(Loop, Opts.Analyzer);
}

const PreparedLoop &Session::prepare(const ir::DoLoop &Loop,
                                     const analysis::AnalyzerOptions &AOpts) {
  return prepareWith(Loop, AOpts);
}

void Session::invalidate(const ir::DoLoop &Loop) { Plans.erase(&Loop); }

bool Session::isPrepared(const ir::DoLoop &Loop) const {
  return Plans.find(&Loop) != Plans.end();
}

const ir::DoLoop *Session::findPreparedLoop(std::string_view Label) const {
  for (const auto &KV : Plans)
    if (KV.first->getLabel() == Label)
      return KV.first;
  return nullptr;
}

rt::ExecStats Session::run(const ir::DoLoop &Loop, rt::Memory &M,
                           sym::Bindings &B) {
  auto It = Plans.find(&Loop);
  PreparedLoop &PL =
      It != Plans.end() ? *It->second : prepareWith(Loop, Opts.Analyzer);
  ++PL.Executions;
  return Exec.runPlanned(PL.Plan, M, B, Pool, &Hoist, &PL.Cascades, &Frames,
                         Opts.UseCompiledUSRs ? &UsrCompile : nullptr);
}

std::optional<rt::ExecStats> Session::runPrepared(const ir::DoLoop &Loop,
                                                  rt::Memory &M,
                                                  sym::Bindings &B) {
  auto It = Plans.find(&Loop);
  if (It == Plans.end())
    return std::nullopt;
  PreparedLoop &PL = *It->second;
  ++PL.Executions;
  return Exec.runPlanned(PL.Plan, M, B, Pool, &Hoist, &PL.Cascades, &Frames,
                         Opts.UseCompiledUSRs ? &UsrCompile : nullptr);
}

std::vector<rt::ExecStats> Session::runBatch(const ir::DoLoop &Loop,
                                             rt::Memory &M, sym::Bindings &B,
                                             unsigned Repeats) {
  return runBatch(Loop, M, B, Repeats, nullptr);
}

std::vector<rt::ExecStats> Session::runBatch(
    const ir::DoLoop &Loop, rt::Memory &M, sym::Bindings &B, unsigned Repeats,
    const std::function<void(unsigned, rt::Memory &, sym::Bindings &)>
        &BetweenElements) {
  std::vector<rt::ExecStats> Out;
  Out.reserve(Repeats);
  for (unsigned R = 0; R < Repeats; ++R) {
    if (BetweenElements)
      BetweenElements(R, M, B);
    Out.push_back(run(Loop, M, B));
  }
  return Out;
}

void Session::runSequential(const ir::DoLoop &Loop, rt::Memory &M,
                            sym::Bindings &B) {
  Exec.runSequential(Loop, M, B);
}

void Session::runStmts(const std::vector<const ir::Stmt *> &Stmts,
                       rt::Memory &M, sym::Bindings &B) {
  Exec.runStmts(Stmts, M, B);
}

bool Session::computeBounds(const usr::USR *S, sym::Bindings &B, int64_t &Lo,
                            int64_t &Hi) {
  return Exec.computeBounds(S, B, Pool, Lo, Hi);
}
