//===- session/Session.cpp - Analyze-once / execute-many sessions ---------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "session/Session.h"

#include "ir/Validate.h"

#include <algorithm>
#include <stdexcept>

using namespace halo;
using namespace halo::session;

namespace halo {
namespace session {

/// RAII lease of one rt::ExecContext from the session pool: checkout on
/// construction, return on destruction (exception-safe). The pool hands
/// the most-recently-returned context out first, so a sequential caller
/// keeps hitting the same warm frames — the steady state is unchanged
/// from the single-context design.
class ContextLease {
public:
  explicit ContextLease(Session &S) : S(S) {
    support::MutexLock L(S.CtxMutex);
    if (!S.Free.empty()) {
      C = S.Free.back();
      S.Free.pop_back();
      return;
    }
    S.Contexts.push_back(std::make_unique<rt::ExecContext>());
    C = S.Contexts.back().get();
  }
  ~ContextLease() {
    // Never return a context carrying the (stack-lived) token of the
    // execution that just ended — also on the exception path.
    C->Cancel = nullptr;
    support::MutexLock L(S.CtxMutex);
    S.Free.push_back(C);
  }
  ContextLease(const ContextLease &) = delete;
  ContextLease &operator=(const ContextLease &) = delete;

  rt::ExecContext &get() { return *C; }

private:
  Session &S;
  rt::ExecContext *C = nullptr;
};

} // namespace session
} // namespace halo

namespace {

/// RAII in-flight refcount on a plan (see PreparedLoop::InFlight).
struct PlanRef {
  explicit PlanRef(PreparedLoop &PL) : PL(PL) {
    PL.InFlight.fetch_add(1, std::memory_order_acquire);
  }
  ~PlanRef() { PL.InFlight.fetch_sub(1, std::memory_order_release); }
  PreparedLoop &PL;
};

} // namespace

Session::Session(ir::Program &Prog, usr::USRContext &Ctx, SessionOptions O)
    : Prog(Prog), Ctx(Ctx), Opts(std::move(O)), Pool(Opts.Threads),
      Exec(Prog, Ctx), Compile(Ctx.symCtx()),
      UsrCompile(Ctx.symCtx(), Compile) {
  Exec.setUseCompiledPredicates(Opts.UseCompiledPredicates);
  Exec.setUseCompiledUSRs(Opts.UseCompiledUSRs);
  Exec.setUseBlockEval(Opts.UseBlockEval);
}

Session::~Session() = default;

PreparedLoop &Session::prepareWith(const ir::DoLoop &Loop,
                                   const analysis::AnalyzerOptions &AOpts) {
  // Front door: untrusted programs are validated structurally before any
  // analysis or execution sees them. Malformed shapes (undeclared arrays,
  // constant empty trips, provably out-of-bounds subscripts, loop-variable
  // reuse, CIV-on-loop-var, call cycles, pathological nesting) raise a
  // structured support::ValidationError here instead of tripping asserts
  // or UB deeper in the pipeline.
  ir::validateLoop(Prog, Loop);
  // Labels are the serving layer's loop addresses: a second loop with the
  // same label would silently shadow the first in every label-based
  // lookup, routing traffic to the wrong loop. Fail at prepare time.
  for (const auto &KV : Plans)
    if (KV.first != &Loop && KV.first->getLabel() == Loop.getLabel())
      throw std::invalid_argument(
          "duplicate loop label '" + Loop.getLabel() +
          "': another prepared loop already carries it");
  // This call is analysis-exclusive by contract, so nothing executes
  // right now: reclaim retired plans whose executions have all finished.
  sweepRetired();
  auto PL = std::make_unique<PreparedLoop>();
  analysis::HybridAnalyzer A(Ctx, Prog, AOpts);
  PL->Plan = A.analyze(Loop);
  PL->FactorStats = A.lastFactorStats();
  PL->AOpts = AOpts;
  // Built against the plan in its final (heap) location: cascade stages
  // keep pointers into Plan.Arrays.
  PL->Cascades = rt::PlanCascades::build(PL->Plan, Compile);
  // Warm the compiled-USR cache at plan time: every independence USR the
  // HOIST-USR fallback can reach is lowered once here, so no execution
  // ever pays USR compilation (and the code cache stays read-only on the
  // concurrent execute path).
  if (Opts.UseCompiledUSRs && PL->Plan.Hoistable)
    for (const analysis::ArrayPlan &AP : PL->Plan.Arrays)
      for (const usr::USR *S :
           {AP.FlowUSR, AP.OutputUSR, AP.ExtRedUSR})
        if (S)
          (void)UsrCompile.get(S);
  auto &Slot = Plans[&Loop];
  if (Slot)
    Retired.push_back(std::move(Slot)); // Deferred reclaim, not delete.
  Slot = std::move(PL);
  return *Slot;
}

void Session::sweepRetired() {
  Retired.erase(std::remove_if(Retired.begin(), Retired.end(),
                               [](const std::unique_ptr<PreparedLoop> &PL) {
                                 return PL->InFlight.load(
                                            std::memory_order_acquire) == 0;
                               }),
                Retired.end());
}

const PreparedLoop &Session::prepare(const ir::DoLoop &Loop) {
  auto It = Plans.find(&Loop);
  if (It != Plans.end())
    return *It->second;
  if (PreparedLoop *PL = tryAdoptStaged(Loop))
    return *PL;
  return prepareWith(Loop, Opts.Analyzer);
}

const PreparedLoop &Session::prepare(const ir::DoLoop &Loop,
                                     const analysis::AnalyzerOptions &AOpts) {
  return prepareWith(Loop, AOpts);
}

void Session::invalidate(const ir::DoLoop &Loop) {
  auto It = Plans.find(&Loop);
  if (It == Plans.end())
    return;
  // Sweep BEFORE retiring (like prepareWith): the plan dropped here
  // survives this call and is reclaimed by the next exclusive phase, so
  // stale references never dangle across the phase that retired them.
  sweepRetired();
  Retired.push_back(std::move(It->second));
  Plans.erase(It);
}

bool Session::isPrepared(const ir::DoLoop &Loop) const {
  return Plans.find(&Loop) != Plans.end();
}

const ir::DoLoop *Session::findPreparedLoop(std::string_view Label) const {
  for (const auto &KV : Plans)
    if (KV.first->getLabel() == Label)
      return KV.first;
  return nullptr;
}

rt::ExecStats Session::execute(PreparedLoop &PL, rt::Memory &M,
                               sym::Bindings &B,
                               const support::CancelToken *Cancel) {
  // A token fired before any work starts sheds the execution entirely:
  // no Executions bump, no lease, no memory access — the caller sees an
  // aborted stats record and a bit-identical Memory.
  if (support::stopRequested(Cancel)) {
    rt::ExecStats S;
    S.Aborted = Cancel->state() == support::CancelToken::State::Expired
                    ? rt::ExecStats::AbortReason::Expired
                    : rt::ExecStats::AbortReason::Cancelled;
    return S;
  }
  PL.Executions.fetch_add(1, std::memory_order_relaxed);
  PlanRef Ref(PL);
  ContextLease Ctx(*this);
  Ctx.get().Cancel = Cancel;
  return Exec.runPlanned(PL.Plan, M, B, Pool, &Hoist, &PL.Cascades,
                         &Ctx.get(),
                         Opts.UseCompiledUSRs ? &UsrCompile : nullptr);
}

rt::ExecStats Session::run(const ir::DoLoop &Loop, rt::Memory &M,
                           sym::Bindings &B) {
  auto It = Plans.find(&Loop);
  if (It == Plans.end()) {
    // The default-options prepare, not prepareWith: a first run of a
    // loop with a staged (deserialized) plan must go through adoption.
    prepare(Loop);
    It = Plans.find(&Loop);
  }
  return execute(*It->second, M, B);
}

std::optional<rt::ExecStats>
Session::runPrepared(const ir::DoLoop &Loop, rt::Memory &M, sym::Bindings &B,
                     const support::CancelToken *Cancel) {
  auto It = Plans.find(&Loop);
  if (It == Plans.end())
    return std::nullopt;
  return execute(*It->second, M, B, Cancel);
}

std::vector<rt::ExecStats> Session::runBatch(const ir::DoLoop &Loop,
                                             rt::Memory &M, sym::Bindings &B,
                                             unsigned Repeats) {
  return runBatch(Loop, M, B, Repeats, nullptr);
}

std::vector<rt::ExecStats> Session::runBatch(
    const ir::DoLoop &Loop, rt::Memory &M, sym::Bindings &B, unsigned Repeats,
    const std::function<void(unsigned, rt::Memory &, sym::Bindings &)>
        &BetweenElements) {
  std::vector<rt::ExecStats> Out;
  Out.reserve(Repeats);
  for (unsigned R = 0; R < Repeats; ++R) {
    if (BetweenElements)
      BetweenElements(R, M, B);
    Out.push_back(run(Loop, M, B));
  }
  return Out;
}

void Session::runSequential(const ir::DoLoop &Loop, rt::Memory &M,
                            sym::Bindings &B) {
  Exec.runSequential(Loop, M, B);
}

void Session::runStmts(const std::vector<const ir::Stmt *> &Stmts,
                       rt::Memory &M, sym::Bindings &B) {
  Exec.runStmts(Stmts, M, B);
}

bool Session::computeBounds(const usr::USR *S, sym::Bindings &B, int64_t &Lo,
                            int64_t &Hi) {
  return Exec.computeBounds(S, B, Pool, Lo, Hi);
}

size_t Session::savePlans(std::ostream &Out) {
  std::vector<plan::SavedLoop> Ls;
  Ls.reserve(Plans.size());
  for (const auto &KV : Plans) {
    const PreparedLoop &PL = *KV.second;
    plan::SavedLoop SL;
    SL.Plan = &PL.Plan;
    SL.FStats = &PL.FactorStats;
    SL.AOpts = &PL.AOpts;
    SL.Cascades = &PL.Cascades;
    Ls.push_back(SL);
  }
  // The Plans map iterates in pointer order; serialize in label order so
  // the same session state always produces byte-identical streams.
  std::sort(Ls.begin(), Ls.end(),
            [](const plan::SavedLoop &A, const plan::SavedLoop &B) {
              return A.Plan->Loop->getLabel() < B.Plan->Loop->getLabel();
            });
  return plan::save(Out, Prog, Compile, UsrCompile, Ls, codegenKey());
}

plan::LoadResult Session::loadPlans(std::istream &In) {
  std::vector<plan::StagedLoop> Ls;
  plan::LoadResult R = plan::load(In, Ctx, Compile, UsrCompile, Ls);
  for (plan::StagedLoop &SL : Ls) {
    std::string Label = SL.Label;
    StagedPlans.insert_or_assign(std::move(Label), std::move(SL));
  }
  PlanDiags.insert(PlanDiags.end(), R.Diags.begin(), R.Diags.end());
  return R;
}

PreparedLoop *Session::tryAdoptStaged(const ir::DoLoop &Loop) {
  auto SIt = StagedPlans.find(Loop.getLabel());
  if (SIt == StagedPlans.end())
    return nullptr;
  // Same front door and label discipline as prepareWith: adoption must
  // never admit a loop that full analysis would have rejected.
  ir::validateLoop(Prog, Loop);
  for (const auto &KV : Plans)
    if (KV.first != &Loop && KV.first->getLabel() == Loop.getLabel())
      throw std::invalid_argument(
          "duplicate loop label '" + Loop.getLabel() +
          "': another prepared loop already carries it");
  plan::StagedLoop &SL = SIt->second;
  // Never trust the serialized keys: re-derive both from the live loop
  // and this session's options, and require both to match.
  const plan::CodegenKey CG = codegenKey();
  const uint64_t KeyA =
      plan::planKey(Prog, Loop, Opts.Analyzer, CG, plan::PrimarySeed);
  if (KeyA != SL.KeyA) {
    PlanDiags.emplace_back(
        support::Diag::Code::PlanKeyMismatch,
        "loop '" + Loop.getLabel() +
            "': staged plan key does not match this loop/options; "
            "re-analyzing");
    StagedPlans.erase(SIt);
    return nullptr;
  }
  const uint64_t KeyB =
      plan::planKey(Prog, Loop, Opts.Analyzer, CG, plan::VerifySeed);
  if (KeyB != SL.KeyB) {
    // Primary-hash collision, caught by the independent verify hash (the
    // HoistCache discipline). Counted so tests can assert it fires.
    ++PlanKeyCollisions;
    PlanDiags.emplace_back(
        support::Diag::Code::PlanKeyMismatch,
        "loop '" + Loop.getLabel() +
            "': primary plan-key collision (verify hash differs); "
            "re-analyzing");
    StagedPlans.erase(SIt);
    return nullptr;
  }
  // Resolve CivJoin anchors against the live loop body.
  std::vector<const ir::IfStmt *> Ifs = plan::collectIfStmts(Loop);
  for (uint32_t Idx : SL.JoinIfIndex)
    if (Idx >= Ifs.size()) {
      PlanDiags.emplace_back(
          support::Diag::Code::PlanKeyMismatch,
          "loop '" + Loop.getLabel() +
              "': staged CIV join anchor out of range; re-analyzing");
      StagedPlans.erase(SIt);
      return nullptr;
    }

  sweepRetired();
  auto PL = std::make_unique<PreparedLoop>();
  // Vector moves steal heap buffers, so the CascadeStage pointers inside
  // Cascades (into Plan.Arrays[i].*.Stages) stay valid across the move.
  PL->Plan = std::move(SL.Plan);
  PL->Plan.Loop = &Loop;
  for (size_t I = 0; I < SL.JoinIfIndex.size(); ++I)
    PL->Plan.Civ.Joins[I].At = Ifs[SL.JoinIfIndex[I]];
  PL->FactorStats = SL.FStats;
  PL->Cascades = std::move(SL.Cascades);
  PL->AOpts = Opts.Analyzer;
  StagedPlans.erase(SIt);
  // Same compiled-USR warm-up as prepareWith (pure cache hits here: the
  // load already compiled them).
  if (Opts.UseCompiledUSRs && PL->Plan.Hoistable)
    for (const analysis::ArrayPlan &AP : PL->Plan.Arrays)
      for (const usr::USR *S : {AP.FlowUSR, AP.OutputUSR, AP.ExtRedUSR})
        if (S)
          (void)UsrCompile.get(S);
  auto &Slot = Plans[&Loop];
  if (Slot)
    Retired.push_back(std::move(Slot));
  Slot = std::move(PL);
  ++PlansWarmStarted;
  return Slot.get();
}

size_t Session::numPooledFrames() const {
  support::MutexLock L(CtxMutex);
  size_t N = 0;
  for (const std::unique_ptr<rt::ExecContext> &C : Contexts)
    N += C->Frames.size();
  return N;
}

size_t Session::pooledFrameSlotsSaved() const {
  support::MutexLock L(CtxMutex);
  size_t N = 0;
  for (const std::unique_ptr<rt::ExecContext> &C : Contexts)
    N += C->Frames.stackSlotsSaved() + C->UsrFrames.stackSlotsSaved();
  return N;
}

size_t Session::numExecContexts() const {
  support::MutexLock L(CtxMutex);
  return Contexts.size();
}
