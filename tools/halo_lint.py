#!/usr/bin/env python3
"""HALO repo-contract linter.

Part of HALO, a reproduction of "Logical Inference Techniques for Loop
Parallelization" (Oancea & Rauchwerger, PLDI 2012).

Machine-checks the repo conventions that CMake and the compiler cannot:

  R1  every src/**/*.cpp is listed in CMakeLists.txt's HALO_WERROR_NEW
      set_source_files_properties block (new sources must be -Werror-clean
      and say so; a file missing from the list silently dodges CI's
      warnings-as-errors tier),
  R2  the tests/*.cpp registration loop in CMakeLists.txt registers every
      test with a ctest TIMEOUT (a deadlocked condvar gate must fail fast
      in CI, not hang the job) and filters none of them out,
  R3  every file in tests/corpus/ is a .repro with a valid replay header
      (fuzz_regression_test replays the directory by extension; a typo'd
      extension or header silently drops the regression),
  R4  every src/ subsystem directory carries a README.md (the documented-
      architecture contract ARCHITECTURE.md links into),
  R5  every HALO_NO_THREAD_SAFETY_ANALYSIS use in src/ carries an adjacent
      justification comment (support/Sync.h declares bare uses bugs).

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
--self-test seeds one violation per rule into scratch trees and requires
the linter to catch each one (and to pass a clean tree), so CI proves the
linter itself works before trusting its green.
"""

import argparse
import os
import re
import shutil
import sys
import tempfile

RULES = ("R1", "R2", "R3", "R4", "R5")


def find_violations(repo):
    """Returns a list of (rule, message) violations for the tree at repo."""
    out = []
    cmake_path = os.path.join(repo, "CMakeLists.txt")
    try:
        with open(cmake_path, encoding="utf-8") as f:
            cmake = f.read()
    except OSError as ex:
        return [("R1", "cannot read CMakeLists.txt: %s" % ex)]

    # R1: every src/**/*.cpp in the HALO_WERROR_NEW block. The block is
    # the set_source_files_properties(...) call guarded by the option.
    block = re.search(
        r"if\(HALO_WERROR_NEW\)\s*set_source_files_properties\((.*?)"
        r"PROPERTIES\s+COMPILE_OPTIONS",
        cmake,
        re.S,
    )
    if not block:
        out.append(("R1", "CMakeLists.txt: HALO_WERROR_NEW "
                          "set_source_files_properties block not found"))
    else:
        listed = set(re.findall(r"\S+\.cpp", block.group(1)))
        for root, _dirs, files in os.walk(os.path.join(repo, "src")):
            for name in sorted(files):
                if not name.endswith(".cpp"):
                    continue
                rel = os.path.relpath(os.path.join(root, name), repo)
                rel = rel.replace(os.sep, "/")
                if rel not in listed:
                    out.append(("R1", "%s is not in the HALO_WERROR_NEW "
                                      "-Werror list" % rel))

    # R2: the test loop registers every tests/*.cpp with a TIMEOUT.
    loop = re.search(
        r"file\(GLOB HALO_TEST_SOURCES [^)]*tests/\*\.cpp\)(.*?)endforeach",
        cmake,
        re.S,
    )
    if not loop:
        out.append(("R2", "CMakeLists.txt: tests/*.cpp glob loop not found"))
    else:
        body = loop.group(1)
        if "list(REMOVE_ITEM HALO_TEST_SOURCES" in body or \
           "list(REMOVE_ITEM HALO_TEST_SOURCES" in cmake:
            out.append(("R2", "CMakeLists.txt filters test sources out of "
                              "the registration glob"))
        if not re.search(r"add_test\(NAME \$\{TEST_NAME\}", body):
            out.append(("R2", "test loop does not add_test every "
                              "tests/*.cpp"))
        if not re.search(
                r"set_tests_properties\(\$\{TEST_NAME\}\s+PROPERTIES\s+"
                r"TIMEOUT", body):
            out.append(("R2", "test loop does not set a ctest TIMEOUT on "
                              "every test"))

    # R3: corpus entries are .repro files with a valid replay header.
    corpus = os.path.join(repo, "tests", "corpus")
    if os.path.isdir(corpus):
        for name in sorted(os.listdir(corpus)):
            path = os.path.join(corpus, name)
            if not os.path.isfile(path):
                continue
            rel = "tests/corpus/" + name
            if not name.endswith(".repro"):
                out.append(("R3", "%s is not a .repro file — "
                                  "fuzz_regression_test will not replay it"
                            % rel))
                continue
            try:
                with open(path, encoding="utf-8") as f:
                    lines = f.read().splitlines()
            except (OSError, UnicodeDecodeError) as ex:
                out.append(("R3", "%s is unreadable: %s" % (rel, ex)))
                continue
            if not lines or lines[0].strip() != "# halo_fuzz corpus entry":
                out.append(("R3", "%s lacks the '# halo_fuzz corpus entry' "
                                  "header line" % rel))
                continue
            keys = {ln.split()[0] for ln in lines
                    if ln and not ln.startswith("#") and ln.split()}
            missing = sorted({"seed", "expect"} - keys)
            if missing:
                out.append(("R3", "%s is missing replay field(s): %s"
                            % (rel, ", ".join(missing))))

    # R4: every src/ subsystem has a README.md.
    srcdir = os.path.join(repo, "src")
    if os.path.isdir(srcdir):
        for name in sorted(os.listdir(srcdir)):
            sub = os.path.join(srcdir, name)
            if not os.path.isdir(sub):
                continue
            if not os.path.isfile(os.path.join(sub, "README.md")):
                out.append(("R4", "src/%s/ has no README.md" % name))

    # R5: HALO_NO_THREAD_SAFETY_ANALYSIS uses carry a justification. The
    # macro's own definition (support/Sync.h) is exempt; every other use
    # must have a comment within the three preceding lines.
    for root, _dirs, files in os.walk(srcdir) if os.path.isdir(srcdir) \
            else []:
        for name in sorted(files):
            if not name.endswith((".h", ".cpp")):
                continue
            path = os.path.join(root, name)
            rel = os.path.relpath(path, repo).replace(os.sep, "/")
            if rel == "src/support/Sync.h":
                continue
            try:
                with open(path, encoding="utf-8") as f:
                    lines = f.read().splitlines()
            except (OSError, UnicodeDecodeError):
                continue
            for i, line in enumerate(lines):
                if "HALO_NO_THREAD_SAFETY_ANALYSIS" not in line:
                    continue
                context = lines[max(0, i - 3):i]
                if not any("//" in c for c in context):
                    out.append(("R5", "%s:%d: bare "
                                      "HALO_NO_THREAD_SAFETY_ANALYSIS "
                                      "(no justification comment above)"
                                % (rel, i + 1)))
    return out


def run_lint(repo):
    violations = find_violations(repo)
    for rule, msg in violations:
        print("halo_lint %s: %s" % (rule, msg))
    if violations:
        print("halo_lint: %d violation(s)" % len(violations))
        return 1
    print("halo_lint: clean")
    return 0


#===---------------------------------------------------------------------===//
# Self-test: seed one violation per rule, require the linter to catch it.
#===---------------------------------------------------------------------===//

CLEAN_CMAKE = """\
cmake_minimum_required(VERSION 3.16)
project(halo CXX)
option(HALO_WERROR_NEW "werror" OFF)
if(HALO_WERROR_NEW)
  set_source_files_properties(
    src/support/Good.cpp
    PROPERTIES COMPILE_OPTIONS "-Werror")
endif()
file(GLOB HALO_TEST_SOURCES CONFIGURE_DEPENDS tests/*.cpp)
foreach(TEST_SRC ${HALO_TEST_SOURCES})
  get_filename_component(TEST_NAME ${TEST_SRC} NAME_WE)
  add_executable(${TEST_NAME} ${TEST_SRC})
  add_test(NAME ${TEST_NAME} COMMAND ${TEST_NAME})
  set_tests_properties(${TEST_NAME} PROPERTIES TIMEOUT 300)
endforeach()
"""

CLEAN_REPRO = """\
# halo_fuzz corpus entry
# minimal self-test entry
seed 1
body 2
trip 8
hostile 0
expect clean
"""


def make_clean_tree(root):
    os.makedirs(os.path.join(root, "src", "support"))
    os.makedirs(os.path.join(root, "tests", "corpus"))
    with open(os.path.join(root, "CMakeLists.txt"), "w",
              encoding="utf-8") as f:
        f.write(CLEAN_CMAKE)
    with open(os.path.join(root, "src", "support", "Good.cpp"), "w",
              encoding="utf-8") as f:
        f.write("// Deliberately dynamic locking, justified here.\n"
                "void f() HALO_NO_THREAD_SAFETY_ANALYSIS {}\n")
    with open(os.path.join(root, "src", "support", "README.md"), "w",
              encoding="utf-8") as f:
        f.write("# support\n")
    with open(os.path.join(root, "tests", "corpus", "ok.repro"), "w",
              encoding="utf-8") as f:
        f.write(CLEAN_REPRO)


def seed_violation(root, rule):
    """Mutates a clean tree at root to violate exactly one rule."""
    if rule == "R1":
        with open(os.path.join(root, "src", "support", "Rogue.cpp"), "w",
                  encoding="utf-8") as f:
            f.write("// not in the -Werror list\n")
    elif rule == "R2":
        path = os.path.join(root, "CMakeLists.txt")
        with open(path, encoding="utf-8") as f:
            cmake = f.read()
        cmake = cmake.replace(
            "  set_tests_properties(${TEST_NAME} PROPERTIES TIMEOUT 300)\n",
            "")
        with open(path, "w", encoding="utf-8") as f:
            f.write(cmake)
    elif rule == "R3":
        with open(os.path.join(root, "tests", "corpus", "typo.repr"), "w",
                  encoding="utf-8") as f:
            f.write(CLEAN_REPRO)
    elif rule == "R4":
        os.makedirs(os.path.join(root, "src", "undocumented"))
    elif rule == "R5":
        # A header: .cpp files would also trip R1 (not in the -Werror
        # list) and make the seeded violation ambiguous.
        with open(os.path.join(root, "src", "support", "Bare.h"), "w",
                  encoding="utf-8") as f:
            f.write("\n\n\n\nvoid g() HALO_NO_THREAD_SAFETY_ANALYSIS {}\n")
    else:
        raise ValueError(rule)


def self_test():
    failures = []
    with tempfile.TemporaryDirectory(prefix="halo_lint_") as tmp:
        clean = os.path.join(tmp, "clean")
        make_clean_tree(clean)
        got = find_violations(clean)
        if got:
            failures.append("clean tree not clean: %s" % got)

        for rule in RULES:
            tree = os.path.join(tmp, rule)
            shutil.copytree(clean, tree)
            seed_violation(tree, rule)
            got = find_violations(tree)
            hit = [r for r, _ in got]
            if rule not in hit:
                failures.append("seeded %s violation not caught (got %s)"
                                % (rule, got))
            if set(hit) - {rule}:
                failures.append("seeded %s tripped unrelated rule(s): %s"
                                % (rule, got))

    for f in failures:
        print("halo_lint self-test FAIL: %s" % f)
    if failures:
        return 1
    print("halo_lint self-test: all %d rules catch their seeded violation"
          % len(RULES))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root to lint (default: this script's repo)")
    ap.add_argument("--self-test", action="store_true",
                    help="seed one violation per rule and require the "
                         "linter to catch each")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if not os.path.isdir(args.repo):
        print("halo_lint: no such directory: %s" % args.repo,
              file=sys.stderr)
        return 2
    return run_lint(args.repo)


if __name__ == "__main__":
    sys.exit(main())
