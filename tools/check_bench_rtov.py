#!/usr/bin/env python3
"""CI sanity check for the machine-readable RTov benchmark record.

bench_rtov_overhead writes BENCH_rtov.json (per-section median ns/exec
plus speedup ratios) so the perf trajectory is trackable across PRs. This
script fails the job if the record is malformed, if the block-vectorized
tier regressed to slower than the scalar bytecode on the N=1e6 LoopAll
section or on the USR gated-recurrence sweep, or if the governor stopped
routing through the block tier at all. Stdlib only.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"BENCH_rtov check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_rtov.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot read {path}: {e}")

    for sec in ("loopall_n1e6", "session_reuse_n256", "usr_oind_n2048",
                "usr_gate_sweep_n1e6"):
        if sec not in doc:
            fail(f"missing section {sec!r}")

    la = doc["loopall_n1e6"]
    if la["block_evals"] < 1:
        fail("block tier never ran on the LoopAll section")
    if la["block_ns_per_exec"] >= la["scalar_ns_per_exec"]:
        fail("block tier slower than scalar bytecode at N=1e6: "
             f"{la['block_ns_per_exec']:.0f} vs "
             f"{la['scalar_ns_per_exec']:.0f} ns/exec")

    gs = doc["usr_gate_sweep_n1e6"]
    if gs["gate_block_evals"] < 1:
        fail("USR gate batching never ran")
    if gs["block_ns_per_exec"] >= gs["scalar_ns_per_exec"]:
        fail("batched gate sweep slower than the scalar sweep")

    print("block tier vs scalar: "
          f"{la['speedup_block_vs_scalar']:.2f}x (LoopAll N=1e6), "
          f"{gs['speedup_block_vs_scalar']:.2f}x (USR gate sweep)")


if __name__ == "__main__":
    main()
