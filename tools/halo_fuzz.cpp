//===- tools/halo_fuzz.cpp - Differential loop-nest fuzzer driver ---------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// Front door of the fuzz subsystem (src/fuzz/, docs/FUZZING.md): generates
// seed-deterministic loop nests, runs the differential oracle stack
// (brute-force dependence, engine parity, front-door validation) on each,
// greedily minimizes failures, and emits corpus repros. Exit status is
// nonzero when any case fails — CI runs a fixed-seed sweep under ASan.
//
//   halo_fuzz --seeds 2000                 # benign sweep
//   halo_fuzz --seeds 500 --hostile        # malformed-input sweep
//   halo_fuzz --replay repro.txt           # re-check one corpus entry
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Minimize.h"
#include "fuzz/Oracle.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace halo;

namespace {

struct DriverOptions {
  uint64_t Seeds = 200;
  uint64_t SeedBase = 1;
  unsigned Body = 6;
  int64_t Trip = 48;
  unsigned Threads = 3;
  bool Hostile = false;
  bool Minimize = true;
  std::string CorpusOut;
  std::string Replay;
};

int usage(const char *Msg) {
  if (Msg)
    std::fprintf(stderr, "halo_fuzz: %s\n", Msg);
  std::fprintf(
      stderr,
      "usage: halo_fuzz [--seeds N] [--seed-base S] [--body N] [--trip N]\n"
      "                 [--threads N] [--hostile] [--no-minimize]\n"
      "                 [--corpus-out DIR] [--replay FILE]\n");
  return 2;
}

void reportFailure(const fuzz::GeneratedCase &Case,
                   const fuzz::OracleResult &Res) {
  std::fprintf(stderr, "=== FAILURE (seed %llu, kind %s) ===\n",
               static_cast<unsigned long long>(Case.Opts.Seed),
               Res.failureKind().c_str());
  for (const std::string &S : Res.Soundness)
    std::fprintf(stderr, "  [soundness] %s\n", S.c_str());
  for (const std::string &S : Res.Parity)
    std::fprintf(stderr, "  [parity] %s\n", S.c_str());
  for (const std::string &S : Res.Other)
    std::fprintf(stderr, "  [front-door] %s\n", S.c_str());
  std::fprintf(stderr, "%s", Case.dump().c_str());
}

/// Re-checks one serialized corpus entry. Returns true when the
/// expectation holds.
bool replayEntry(const fuzz::CorpusEntry &E, const fuzz::OracleOptions &OO) {
  auto Case = fuzz::generate(E.Opts);
  fuzz::OracleResult Res = fuzz::checkCase(*Case, OO);
  if (E.Expect == "validation-error") {
    if (Res.ValidationRejected && Res.ok())
      return true;
    std::fprintf(stderr,
                 "replay: expected structured validation rejection\n");
    reportFailure(*Case, Res);
    return false;
  }
  if (Res.ok())
    return true;
  std::fprintf(stderr, "replay: expected a clean run\n");
  reportFailure(*Case, Res);
  return false;
}

} // namespace

int main(int argc, char **argv) {
  DriverOptions D;
  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (!std::strcmp(A, "--seeds")) {
      const char *V = Next();
      if (!V)
        return usage("--seeds needs a value");
      D.Seeds = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--seed-base")) {
      const char *V = Next();
      if (!V)
        return usage("--seed-base needs a value");
      D.SeedBase = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--body")) {
      const char *V = Next();
      if (!V)
        return usage("--body needs a value");
      D.Body = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(A, "--trip")) {
      const char *V = Next();
      if (!V)
        return usage("--trip needs a value");
      D.Trip = std::strtoll(V, nullptr, 10);
    } else if (!std::strcmp(A, "--threads")) {
      const char *V = Next();
      if (!V)
        return usage("--threads needs a value");
      D.Threads = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(A, "--hostile")) {
      D.Hostile = true;
    } else if (!std::strcmp(A, "--no-minimize")) {
      D.Minimize = false;
    } else if (!std::strcmp(A, "--corpus-out")) {
      const char *V = Next();
      if (!V)
        return usage("--corpus-out needs a value");
      D.CorpusOut = V;
    } else if (!std::strcmp(A, "--replay")) {
      const char *V = Next();
      if (!V)
        return usage("--replay needs a value");
      D.Replay = V;
    } else {
      return usage((std::string("unknown argument: ") + A).c_str());
    }
  }

  fuzz::OracleOptions OO;
  OO.Threads = D.Threads;

  if (!D.Replay.empty()) {
    std::ifstream In(D.Replay);
    if (!In)
      return usage(("cannot open " + D.Replay).c_str());
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Error;
    auto E = fuzz::parseEntry(Buf.str(), Error);
    if (!E) {
      std::fprintf(stderr, "halo_fuzz: %s\n", Error.c_str());
      return 2;
    }
    return replayEntry(*E, OO) ? 0 : 1;
  }

  uint64_t Failures = 0, Rejected = 0, Demotions = 0;
  for (uint64_t S = 0; S < D.Seeds; ++S) {
    fuzz::GenOptions GO;
    GO.Seed = D.SeedBase + S;
    GO.BodyStmts = D.Body;
    GO.Trip = D.Trip;
    GO.Hostile = D.Hostile;
    auto Case = fuzz::generate(GO);
    fuzz::OracleResult Res = fuzz::checkCase(*Case, OO);
    Demotions += Res.GuardDemotions;
    if (Res.ValidationRejected)
      ++Rejected;
    if (Res.ok())
      continue;
    ++Failures;
    std::string Kind = Res.failureKind();
    reportFailure(*Case, Res);
    fuzz::GenOptions Min = GO;
    if (D.Minimize) {
      Min = fuzz::minimizeCase(GO, [&](fuzz::GeneratedCase &Trial) {
        return fuzz::checkCase(Trial, OO).failureKind() == Kind;
      });
      if (Min.Drop.size() > 0) {
        auto MinCase = fuzz::generate(Min);
        std::fprintf(stderr,
                     "--- minimized (%zu of %u slots dropped) ---\n%s",
                     Min.Drop.size(), MinCase->NumSlots,
                     MinCase->dump().c_str());
      }
    }
    if (!D.CorpusOut.empty()) {
      fuzz::CorpusEntry E;
      E.Opts = Min;
      E.Expect = "clean"; // Once fixed, replay must come back clean.
      E.Note = "found by halo_fuzz sweep; failure kind: " + Kind;
      std::string Path = D.CorpusOut + "/seed" +
                         std::to_string(GO.Seed) + "_" + Kind + ".repro";
      std::ofstream Out(Path);
      Out << fuzz::serializeEntry(E);
      std::fprintf(stderr, "repro written: %s\n", Path.c_str());
    }
  }

  std::printf("halo_fuzz: %llu seeds (%s), %llu rejected by validation, "
              "%llu guard demotions, %llu failures\n",
              static_cast<unsigned long long>(D.Seeds),
              D.Hostile ? "hostile" : "benign",
              static_cast<unsigned long long>(Rejected),
              static_cast<unsigned long long>(Demotions),
              static_cast<unsigned long long>(Failures));
  if (D.Hostile && Rejected != D.Seeds) {
    std::fprintf(stderr,
                 "halo_fuzz: %llu hostile cases were not rejected\n",
                 static_cast<unsigned long long>(D.Seeds - Rejected));
    return 1;
  }
  return Failures == 0 ? 0 : 1;
}
