//===- tools/halo_planc.cpp - Plan-cache compiler / inspector -------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// Front door of the plan-cache subsystem (src/plan/, docs/PLAN_FORMAT.md):
// compiles programs to .hplan plan caches, inspects/verifies streams, and
// drives the CI warm-start check.
//
//   halo_planc compile --suite --out DIR         # one .hplan per benchmark
//   halo_planc compile --fuzz-seed 7 --out F     # one generated nest
//   halo_planc dump FILE                         # per-chunk summary
//   halo_planc verify FILE                       # integrity pass only
//   halo_planc warmstart --suite --plans DIR     # load + prepare, assert
//                                                # zero full re-analyses
//   halo_planc warmstart --suite --plans DIR --expect-cold
//                                                # stale cache must fall
//                                                # back cleanly (exit 0)
//   halo_planc bump-version FILE                 # make FILE version-skewed
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"
#include "plan/Plan.h"
#include "session/Session.h"
#include "suite/Suite.h"
#include "support/Error.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace halo;

namespace {

int usage(const char *Msg) {
  if (Msg)
    std::fprintf(stderr, "halo_planc: %s\n", Msg);
  std::fprintf(
      stderr,
      "usage: halo_planc compile (--suite --out DIR | --fuzz-seed N\n"
      "                           [--body N] [--trip N] --out FILE)\n"
      "       halo_planc dump FILE\n"
      "       halo_planc verify FILE\n"
      "       halo_planc warmstart --suite --plans DIR [--expect-cold]\n"
      "       halo_planc bump-version FILE\n");
  return 2;
}

std::string sanitize(const std::string &Name) {
  std::string Out = Name;
  for (char &C : Out)
    if (!(C >= 'a' && C <= 'z') && !(C >= 'A' && C <= 'Z') &&
        !(C >= '0' && C <= '9'))
      C = '_';
  return Out;
}

/// Prepares every loop of \p B in a fresh session and serializes the
/// plans. Returns the number of loops written, or -1 on failure.
int compileBenchmark(suite::Benchmark &B, const std::string &Path) {
  session::Session S(B.prog(), B.usr());
  for (const suite::LoopSpec &LS : B.Loops)
    S.prepare(*LS.Loop);
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "halo_planc: cannot write %s\n", Path.c_str());
    return -1;
  }
  return static_cast<int>(S.savePlans(Out));
}

int cmdCompile(const std::string &Out, bool Suite, bool HaveSeed,
               uint64_t Seed, unsigned Body, int64_t Trip) {
  if (Out.empty())
    return usage("compile requires --out");
  if (Suite == HaveSeed)
    return usage("compile requires exactly one of --suite / --fuzz-seed");
  if (Suite) {
    std::error_code EC;
    std::filesystem::create_directories(Out, EC);
    if (EC) {
      std::fprintf(stderr, "halo_planc: cannot create %s: %s\n", Out.c_str(),
                   EC.message().c_str());
      return 1;
    }
    size_t Loops = 0;
    for (std::unique_ptr<suite::Benchmark> &B : suite::buildAllBenchmarks()) {
      std::string Path = Out + "/" + sanitize(B->Name) + ".hplan";
      int N = compileBenchmark(*B, Path);
      if (N < 0)
        return 1;
      std::printf("%-12s %3d loops -> %s\n", B->Name.c_str(), N,
                  Path.c_str());
      Loops += static_cast<size_t>(N);
    }
    std::printf("compiled %zu loops\n", Loops);
    return 0;
  }
  fuzz::GenOptions GO;
  GO.Seed = Seed;
  GO.BodyStmts = Body;
  GO.Trip = Trip;
  std::unique_ptr<fuzz::GeneratedCase> C = fuzz::generate(GO);
  session::Session S(C->prog(), C->usrCtx());
  S.prepare(*C->Loop);
  std::ofstream OS(Out, std::ios::binary);
  if (!OS) {
    std::fprintf(stderr, "halo_planc: cannot write %s\n", Out.c_str());
    return 1;
  }
  size_t N = S.savePlans(OS);
  std::printf("seed %llu: %zu loop(s) -> %s\n",
              static_cast<unsigned long long>(Seed), N, Out.c_str());
  return 0;
}

int cmdDumpOrVerify(const std::string &Path, bool Dump) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "halo_planc: cannot read %s\n", Path.c_str());
    return 1;
  }
  try {
    std::string Summary = plan::inspect(In);
    if (Dump)
      std::fputs(Summary.c_str(), stdout);
    else
      std::printf("%s: ok\n", Path.c_str());
    return 0;
  } catch (const support::ValidationError &E) {
    for (const support::Diag &D : E.diags())
      std::fprintf(stderr, "%s: %s: %s\n", Path.c_str(),
                   support::diagCodeName(D.Kind), D.Message.c_str());
    return 1;
  }
}

int cmdWarmstart(const std::string &PlansDir, bool ExpectCold) {
  if (PlansDir.empty())
    return usage("warmstart requires --plans DIR");
  size_t Warm = 0, Prepared = 0;
  for (std::unique_ptr<suite::Benchmark> &B : suite::buildAllBenchmarks()) {
    session::Session S(B->prog(), B->usr());
    std::string Path = PlansDir + "/" + sanitize(B->Name) + ".hplan";
    std::ifstream In(Path, std::ios::binary);
    if (In) {
      try {
        plan::LoadResult R = S.loadPlans(In);
        if (R.Rejected != 0 && !ExpectCold) {
          std::fprintf(stderr, "halo_planc: %s: %zu plan(s) rejected:\n",
                       Path.c_str(), R.Rejected);
          for (const support::Diag &D : R.Diags)
            std::fprintf(stderr, "  %s: %s\n",
                         support::diagCodeName(D.Kind), D.Message.c_str());
          return 1;
        }
      } catch (const support::ValidationError &E) {
        // A stale (version-skewed) or corrupt cache must degrade to a
        // cold start, never crash: report and continue un-warmed.
        for (const support::Diag &D : E.diags())
          std::fprintf(stderr, "halo_planc: %s: %s: %s (cold start)\n",
                       Path.c_str(), support::diagCodeName(D.Kind),
                       D.Message.c_str());
      }
    }
    for (const suite::LoopSpec &LS : B->Loops) {
      S.prepare(*LS.Loop);
      ++Prepared;
    }
    Warm += S.numPlansWarmStarted();
    for (const support::Diag &D : S.planDiags())
      std::fprintf(stderr, "halo_planc: %s: %s: %s\n", B->Name.c_str(),
                   support::diagCodeName(D.Kind), D.Message.c_str());
  }
  std::printf("prepared %zu loops, %zu warm-started\n", Prepared, Warm);
  if (ExpectCold)
    return Warm == 0 ? 0 : (std::fprintf(stderr,
                                         "halo_planc: expected a cold "
                                         "start but %zu plans were "
                                         "adopted\n",
                                         Warm),
                            1);
  if (Warm != Prepared) {
    std::fprintf(stderr,
                 "halo_planc: %zu of %zu loops fell back to full "
                 "analysis\n",
                 Prepared - Warm, Prepared);
    return 1;
  }
  return 0;
}

/// Increments the format-version field of \p Path in place — produces a
/// deliberately version-skewed cache for the CI fallback check.
int cmdBumpVersion(const std::string &Path) {
  std::fstream F(Path, std::ios::binary | std::ios::in | std::ios::out);
  if (!F) {
    std::fprintf(stderr, "halo_planc: cannot open %s\n", Path.c_str());
    return 1;
  }
  char Magic[4];
  if (!F.read(Magic, 4) || std::memcmp(Magic, plan::Magic, 4) != 0) {
    std::fprintf(stderr, "halo_planc: %s: not a plan cache\n", Path.c_str());
    return 1;
  }
  char V[4];
  if (!F.read(V, 4)) {
    std::fprintf(stderr, "halo_planc: %s: truncated preamble\n",
                 Path.c_str());
    return 1;
  }
  uint32_t Version = 0;
  for (int I = 0; I < 4; ++I)
    Version |= static_cast<uint32_t>(static_cast<uint8_t>(V[I])) << (8 * I);
  ++Version;
  for (int I = 0; I < 4; ++I)
    V[I] = static_cast<char>(Version >> (8 * I));
  F.seekp(4);
  F.write(V, 4);
  std::printf("%s: version bumped to %u\n", Path.c_str(), Version);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(nullptr);
  std::string Cmd = Argv[1];

  std::string Out, PlansDir, File;
  bool Suite = false, ExpectCold = false, HaveSeed = false;
  uint64_t Seed = 1;
  unsigned Body = 6;
  int64_t Trip = 48;
  for (int I = 2; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (A == "--suite") {
      Suite = true;
    } else if (A == "--expect-cold") {
      ExpectCold = true;
    } else if (A == "--out") {
      const char *V = Next();
      if (!V)
        return usage("--out needs a value");
      Out = V;
    } else if (A == "--plans") {
      const char *V = Next();
      if (!V)
        return usage("--plans needs a value");
      PlansDir = V;
    } else if (A == "--fuzz-seed") {
      const char *V = Next();
      if (!V)
        return usage("--fuzz-seed needs a value");
      Seed = std::strtoull(V, nullptr, 10);
      HaveSeed = true;
    } else if (A == "--body") {
      const char *V = Next();
      if (!V)
        return usage("--body needs a value");
      Body = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (A == "--trip") {
      const char *V = Next();
      if (!V)
        return usage("--trip needs a value");
      Trip = std::strtoll(V, nullptr, 10);
    } else if (A[0] != '-' && File.empty()) {
      File = A;
    } else {
      return usage(("unknown argument '" + A + "'").c_str());
    }
  }

  try {
    if (Cmd == "compile")
      return cmdCompile(Out, Suite, HaveSeed, Seed, Body, Trip);
    if (Cmd == "dump" || Cmd == "verify") {
      if (File.empty())
        return usage("dump/verify require a FILE");
      return cmdDumpOrVerify(File, Cmd == "dump");
    }
    if (Cmd == "warmstart")
      return cmdWarmstart(PlansDir, ExpectCold);
    if (Cmd == "bump-version") {
      if (File.empty())
        return usage("bump-version requires a FILE");
      return cmdBumpVersion(File);
    }
  } catch (const std::exception &E) {
    std::fprintf(stderr, "halo_planc: %s\n", E.what());
    return 1;
  }
  return usage(("unknown command '" + Cmd + "'").c_str());
}
